"""Batched SGNS trainer (the paper's GPU word2vec design, §V-B).

The paper's key observation: temporal-walk "sentences" are short (Fig. 4),
so a sentence-at-a-time GPU word2vec launches huge numbers of tiny
kernels and starves the device.  Their fix batches many sentences per
kernel and lets all pairs in a batch read a *stale* snapshot of the
embedding matrices, relying on update sparsity to preserve accuracy; a
16k-sentence batch gave a 124.2x speedup with no accuracy loss (Fig. 5).

:class:`BatchedSgnsTrainer` is the exact numpy analogue: all pairs from a
batch of sentences evaluate gradients against one weight snapshot
(:meth:`SkipGramModel.batch_gradients`), then a single scatter-add applies
them.  Batch size 1 degenerates to the sequential trainer's semantics, so
the Fig. 5 sweep is a single code path.
"""

from __future__ import annotations

import time

import numpy as np

from repro.observability import get_recorder
from repro.rng import SeedLike, make_rng
from repro.embedding.negative import NegativeSampler
from repro.embedding.skipgram import SkipGramModel, generate_pairs
from repro.embedding.trainer import (
    SgnsConfig,
    TrainerStats,
    publish_trainer_stats,
)
from repro.embedding.vocab import Vocabulary
from repro.walk.corpus import WalkCorpus


class BatchedSgnsTrainer:
    """SGNS with one vectorized update per batch of sentences."""

    def __init__(self, config: SgnsConfig, batch_sentences: int = 1024) -> None:
        if batch_sentences < 1:
            raise ValueError(
                f"batch_sentences must be >= 1, got {batch_sentences}"
            )
        self.config = config
        self.batch_sentences = batch_sentences
        self.last_stats: TrainerStats | None = None

    def train(
        self,
        corpus: WalkCorpus,
        num_nodes: int,
        seed: SeedLike = None,
        model: SkipGramModel | None = None,
    ) -> SkipGramModel:
        """Train SGNS over the corpus; returns the (possibly new) model."""
        cfg = self.config
        rng = make_rng(seed)
        vocab = Vocabulary.from_corpus(corpus, num_nodes)
        sampler = NegativeSampler(vocab)
        if model is None:
            model = SkipGramModel(num_nodes, cfg.dim, seed=rng)
        keep = (
            vocab.keep_probabilities(cfg.subsample_threshold)
            if cfg.subsample_threshold is not None
            else None
        )

        stats = TrainerStats()
        rec = get_recorder()
        start = time.perf_counter()
        sentences = [s for s in corpus.sentences(min_length=2)]
        total_batches = cfg.epochs * max(
            1, -(-len(sentences) // self.batch_sentences)
        )
        # Mutable accumulators shared across the per-epoch spans.
        acc = {"batch_index": 0, "loss_accum": 0.0, "negatives_drawn": 0}
        for epoch in range(cfg.epochs):
            with rec.span("sgns_epoch", epoch=epoch, trainer="batched"):
                self._train_epoch(
                    sentences, vocab, sampler, model, keep, rng,
                    total_batches, stats, acc, rec,
                )

        stats.wall_seconds = time.perf_counter() - start
        stats.mean_loss = acc["loss_accum"] / max(1, stats.pairs_trained)
        self.last_stats = stats
        publish_trainer_stats(stats, negatives_drawn=acc["negatives_drawn"])
        return model

    def _train_epoch(
        self,
        sentences: list[np.ndarray],
        vocab: Vocabulary,
        sampler: NegativeSampler,
        model: SkipGramModel,
        keep: np.ndarray | None,
        rng: np.random.Generator,
        total_batches: int,
        stats: TrainerStats,
        acc: dict,
        rec,
    ) -> None:
        """One epoch: batch the sentences, one vectorized update each."""
        cfg = self.config
        track = rec.enabled
        for base in range(0, len(sentences), self.batch_sentences):
            batch = sentences[base: base + self.batch_sentences]
            centers_parts: list[np.ndarray] = []
            contexts_parts: list[np.ndarray] = []
            for sentence in batch:
                if keep is not None:
                    sentence = vocab.subsample_sentence(sentence, keep, rng)
                    if len(sentence) < 2:
                        continue
                c, o = generate_pairs(
                    sentence, cfg.window, rng, cfg.dynamic_window
                )
                if len(c):
                    centers_parts.append(c)
                    contexts_parts.append(o)
            lr = self._lr(acc["batch_index"], total_batches)
            acc["batch_index"] += 1
            stats.sentences += len(batch)
            if not centers_parts:
                continue
            if track:
                rec.observe("sgns.lr", lr)
            centers = np.concatenate(centers_parts)
            contexts = np.concatenate(contexts_parts)
            if cfg.shared_negatives:
                shared = sampler.sample(cfg.negatives, rng)
                negatives = np.broadcast_to(
                    shared, (len(centers), cfg.negatives)
                ).copy()
                acc["negatives_drawn"] += cfg.negatives
            else:
                negatives = sampler.sample_matrix(
                    len(centers), cfg.negatives, rng
                )
                acc["negatives_drawn"] += len(centers) * cfg.negatives
            # All pairs read this snapshot; the scatter-add below is the
            # stale concurrent update of §V-B.
            gc, go, gn, loss = model.batch_gradients(centers, contexts, negatives)
            model.apply_batch(
                centers, contexts, negatives, gc, go, gn, lr,
                update=cfg.update_mode, cap=cfg.update_cap,
            )
            stats.pairs_trained += len(centers)
            stats.updates += 1
            stats.fp_ops += len(centers) * (1 + cfg.negatives) * 4 * cfg.dim
            # Pair-weighted accumulation: mean_loss is per-pair, the
            # same unit the sequential trainer reports.
            acc["loss_accum"] += loss * len(centers)
            stats.losses.append(loss)

    def _lr(self, batch_index: int, total_batches: int) -> float:
        """Linear decay over batches, floored."""
        cfg = self.config
        if total_batches <= 0:
            return cfg.learning_rate
        frac = min(1.0, batch_index / total_batches)
        return max(cfg.min_learning_rate, cfg.learning_rate * (1.0 - frac))
