"""Sentence-sequential SGNS trainer (the "CPU" / unbatched baseline).

Processes one sentence at a time and applies every pair's update
immediately, so each update sees all previous ones — the semantics of the
open-source CPU word2vec the paper adopts (§V-B) and of the GPU baseline
whose one-kernel-launch-per-sentence structure motivates batching.
Per-sentence Python/numpy overhead here plays the role kernel-launch and
transfer overhead play on the GPU, which is why the Fig. 5 batching sweep
re-measures honestly on this axis.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.errors import EmbeddingError
from repro.observability import Recorder, get_recorder
from repro.rng import SeedLike, make_rng
from repro.embedding.negative import NegativeSampler
from repro.embedding.skipgram import SkipGramModel, generate_pairs
from repro.embedding.vocab import Vocabulary
from repro.walk.corpus import WalkCorpus


@dataclass(frozen=True)
class SgnsConfig:
    """word2vec hyperparameters.

    ``dim=8`` is the paper's recommended embedding dimension (Fig. 8d:
    accuracy saturates at 8, far below the customary 128).
    """

    dim: int = 8
    window: int = 5
    negatives: int = 5
    epochs: int = 2
    learning_rate: float = 0.025
    min_learning_rate: float = 1e-4
    subsample_threshold: float | None = None
    dynamic_window: bool = True
    update_mode: str = "capped"
    update_cap: int = 128
    # Draw one set of K negatives per *batch* instead of per pair — the
    # GPU word2vec trick of sharing negative gathers.  Caveat measured by
    # the test suite: sharing across a whole multi-thousand-pair batch
    # starves the objective of contrast (only K rows per batch ever
    # receive negative gradient) and stalls convergence; real GPU kernels
    # share within small thread groups.  Kept as an honest ablation knob.
    shared_negatives: bool = False

    def __post_init__(self) -> None:
        if self.dim < 1:
            raise EmbeddingError(f"dim must be >= 1, got {self.dim}")
        if self.window < 1:
            raise EmbeddingError(f"window must be >= 1, got {self.window}")
        if self.negatives < 1:
            raise EmbeddingError(f"negatives must be >= 1, got {self.negatives}")
        if self.epochs < 1:
            raise EmbeddingError(f"epochs must be >= 1, got {self.epochs}")
        if not 0 < self.learning_rate:
            raise EmbeddingError("learning_rate must be positive")


@dataclass
class TrainerStats:
    """Work counters of one training run (feed the hardware models).

    ``updates`` counts parameter-update events (one per sentence for the
    sequential trainer, one per batch for the batched trainer) — the
    analogue of GPU kernel launches.  fp-op counts follow the SGNS math:
    each pair costs about ``(1 + K) * 4d`` multiply-adds.

    ``mean_loss`` is the mean SGNS loss *per (center, context) pair*
    over the whole run, in every trainer — pair-weighted, so sequential
    and batched runs report the same unit and Fig. 5/6-style loss
    comparisons are apples-to-apples.  ``losses`` keeps the per-update
    mean-pair-loss trace (one entry per update event).
    """

    pairs_trained: int = 0
    sentences: int = 0
    updates: int = 0
    fp_ops: int = 0
    mean_loss: float = 0.0
    wall_seconds: float = 0.0
    losses: list[float] = field(default_factory=list)


def publish_trainer_stats(
    stats: TrainerStats,
    negatives_drawn: int | None = None,
    recorder: Recorder | None = None,
) -> None:
    """Flush one training run's counters into the (ambient) recorder."""
    rec = recorder if recorder is not None else get_recorder()
    if not rec.enabled:
        return
    rec.counter("sgns.runs")
    rec.counter("sgns.pairs", stats.pairs_trained)
    rec.counter("sgns.sentences", stats.sentences)
    rec.counter("sgns.updates", stats.updates)
    rec.counter("sgns.fp_ops", stats.fp_ops)
    if negatives_drawn is not None:
        rec.counter("sgns.negatives_drawn", negatives_drawn)
    if stats.wall_seconds > 0:
        rec.gauge("sgns.pairs_per_sec",
                  stats.pairs_trained / stats.wall_seconds)
    rec.gauge("sgns.mean_loss", stats.mean_loss)


class SequentialSgnsTrainer:
    """One-sentence-at-a-time SGNS training."""

    def __init__(self, config: SgnsConfig) -> None:
        self.config = config
        self.last_stats: TrainerStats | None = None

    def train(
        self,
        corpus: WalkCorpus,
        num_nodes: int,
        seed: SeedLike = None,
        model: SkipGramModel | None = None,
    ) -> SkipGramModel:
        """Train SGNS over the corpus; returns the (possibly new) model."""
        cfg = self.config
        rng = make_rng(seed)
        vocab = Vocabulary.from_corpus(corpus, num_nodes)
        sampler = NegativeSampler(vocab)
        if model is None:
            model = SkipGramModel(num_nodes, cfg.dim, seed=rng)
        keep = (
            vocab.keep_probabilities(cfg.subsample_threshold)
            if cfg.subsample_threshold is not None
            else None
        )

        stats = TrainerStats()
        rec = get_recorder()
        track = rec.enabled
        start = time.perf_counter()
        total_sentences = cfg.epochs * sum(
            1 for _ in corpus.sentences(min_length=2)
        )
        seen = 0
        loss_accum = 0.0
        negatives_drawn = 0
        for epoch in range(cfg.epochs):
            with rec.span("sgns_epoch", epoch=epoch, trainer="sequential"):
                for sentence in corpus.sentences(min_length=2):
                    # The schedule counts every *visited* sentence,
                    # matching the pre-subsample ``total_sentences``
                    # denominator.  (Counting only surviving sentences
                    # left ``seen`` far below the total under
                    # subsampling, so the linear decay never reached its
                    # floor and the effective LR was biased high.)
                    lr = self._lr(seen, total_sentences)
                    seen += 1
                    if keep is not None:
                        sentence = vocab.subsample_sentence(sentence, keep, rng)
                        if len(sentence) < 2:
                            continue
                    centers, contexts = generate_pairs(
                        sentence, cfg.window, rng, cfg.dynamic_window
                    )
                    if len(centers) == 0:
                        continue
                    negatives = sampler.sample_matrix(
                        len(centers), cfg.negatives, rng
                    )
                    gc, go, gn, loss = model.batch_gradients(
                        centers, contexts, negatives
                    )
                    model.apply_batch(
                        centers, contexts, negatives, gc, go, gn, lr,
                        update=cfg.update_mode, cap=cfg.update_cap,
                    )
                    if track:
                        rec.observe("sgns.lr", lr)
                    stats.pairs_trained += len(centers)
                    stats.sentences += 1
                    stats.updates += 1
                    stats.fp_ops += (
                        len(centers) * (1 + cfg.negatives) * 4 * cfg.dim
                    )
                    negatives_drawn += len(centers) * cfg.negatives
                    loss_accum += loss * len(centers)
                    stats.losses.append(loss)

        stats.wall_seconds = time.perf_counter() - start
        stats.mean_loss = loss_accum / max(1, stats.pairs_trained)
        self.last_stats = stats
        publish_trainer_stats(stats, negatives_drawn=negatives_drawn)
        return model

    def _lr(self, seen: int, total: int) -> float:
        """Linear learning-rate decay, floored (word2vec schedule)."""
        cfg = self.config
        if total <= 0:
            return cfg.learning_rate
        frac = min(1.0, seen / total)
        return max(
            cfg.min_learning_rate, cfg.learning_rate * (1.0 - frac)
        )
