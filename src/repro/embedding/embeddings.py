"""Node embedding results and the one-call training front door.

:class:`NodeEmbeddings` wraps the trained input matrix of the SGNS model
— the ``f : V -> R^d`` of Definition III.3 — with the lookups downstream
tasks need: per-node vectors, concatenated edge features (§IV-B: the
embedding of edge (u, v) is ``[f(u), f(v)]``), similarity queries, and
persistence.
"""

from __future__ import annotations

import os

import numpy as np

from repro.errors import EmbeddingError
from repro.rng import SeedLike
from repro.embedding.batched import BatchedSgnsTrainer
from repro.embedding.trainer import SgnsConfig, SequentialSgnsTrainer, TrainerStats
from repro.walk.corpus import WalkCorpus


class NodeEmbeddings:
    """A ``(num_nodes, dim)`` embedding matrix with task-facing lookups."""

    def __init__(self, matrix: np.ndarray) -> None:
        self.matrix = np.ascontiguousarray(matrix, dtype=np.float64)
        if self.matrix.ndim != 2:
            raise EmbeddingError("embedding matrix must be 2-D")

    @property
    def num_nodes(self) -> int:
        """Number of nodes (vocabulary size)."""
        return self.matrix.shape[0]

    @property
    def dim(self) -> int:
        """Embedding dimensionality."""
        return self.matrix.shape[1]

    def __repr__(self) -> str:
        return f"NodeEmbeddings(num_nodes={self.num_nodes}, dim={self.dim})"

    # ------------------------------------------------------------------
    def vector(self, node: int) -> np.ndarray:
        """Embedding of one node (a view; copy before mutating)."""
        return self.matrix[node]

    def vectors(self, nodes: np.ndarray) -> np.ndarray:
        """Embeddings of many nodes, shape ``(len(nodes), dim)``."""
        return self.matrix[np.asarray(nodes, dtype=np.int64)]

    def edge_features(self, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        """Concatenated edge features ``[f(u), f(v)]`` (shape ``(n, 2d)``).

        This is the paper's edge representation for link prediction
        (§IV-B, following node2vec-style operators).
        """
        return np.concatenate([self.vectors(src), self.vectors(dst)], axis=1)

    # ------------------------------------------------------------------
    def cosine_similarity(self, a: int, b: int) -> float:
        """Cosine similarity between two node embeddings (0 if degenerate)."""
        va, vb = self.matrix[a], self.matrix[b]
        denom = np.linalg.norm(va) * np.linalg.norm(vb)
        if denom == 0:
            return 0.0
        return float(np.dot(va, vb) / denom)

    def most_similar(self, node: int, k: int = 5) -> list[tuple[int, float]]:
        """Top-``k`` nodes by cosine similarity (excluding ``node``)."""
        norms = np.linalg.norm(self.matrix, axis=1)
        target = self.matrix[node]
        tnorm = np.linalg.norm(target)
        with np.errstate(divide="ignore", invalid="ignore"):
            sims = (self.matrix @ target) / (norms * tnorm)
        sims = np.nan_to_num(sims, nan=-np.inf)
        sims[node] = -np.inf
        top = np.argsort(sims)[::-1][:k]
        return [(int(i), float(sims[i])) for i in top]

    # ------------------------------------------------------------------
    def save(self, path: str | os.PathLike) -> None:
        """Save to ``.npz``."""
        np.savez_compressed(path, matrix=self.matrix)

    @classmethod
    def load(cls, path: str | os.PathLike) -> "NodeEmbeddings":
        """Load from ``.npz`` written by :meth:`save`."""
        with np.load(path) as data:
            if "matrix" not in data.files:
                raise EmbeddingError(f"{path}: no 'matrix' array in bundle")
            return cls(data["matrix"])


def train_embeddings(
    corpus: WalkCorpus,
    num_nodes: int,
    config: SgnsConfig | None = None,
    batch_sentences: int | None = 1024,
    seed: SeedLike = None,
    objective: str = "negative-sampling",
    workers: int = 1,
    supervisor=None,
    fault_plan=None,
) -> tuple[NodeEmbeddings, TrainerStats]:
    """Train node embeddings from a walk corpus (pipeline phase RW-P2).

    ``batch_sentences=None`` selects the sentence-sequential trainer;
    any integer selects the batched trainer with that batch size (the
    default 1024 is well inside Fig. 5's no-accuracy-loss regime).
    ``objective`` is ``negative-sampling`` (the paper's) or
    ``hierarchical-softmax`` (word2vec's alternative output layer;
    batched only).  ``workers > 1`` trains data-parallel across that
    many processes with per-epoch parameter averaging
    (:class:`repro.parallel.ParallelSgnsTrainer`; negative sampling
    only); ``workers=1`` is the serial path.  ``supervisor`` and
    ``fault_plan`` configure worker supervision and fault injection for
    the parallel path (see :mod:`repro.parallel.supervisor` and
    :mod:`repro.faults`).  Returns the embeddings and the trainer's
    work statistics.
    """
    config = config or SgnsConfig()
    if workers < 1:
        raise EmbeddingError(f"workers must be >= 1, got {workers}")
    if workers > 1:
        if objective != "negative-sampling":
            raise EmbeddingError(
                "parallel training supports the negative-sampling "
                f"objective only, got {objective!r}"
            )
        from repro.parallel.sgns import ParallelSgnsTrainer

        par_trainer = ParallelSgnsTrainer(
            config, workers=workers, batch_sentences=batch_sentences,
            supervisor=supervisor, fault_plan=fault_plan,
        )
        par_model = par_trainer.train(corpus, num_nodes, seed=seed)
        assert par_trainer.last_stats is not None
        return NodeEmbeddings(par_model.w_in), par_trainer.last_stats
    if objective == "hierarchical-softmax":
        from repro.embedding.hsoftmax import BatchedHsTrainer

        hs_trainer = BatchedHsTrainer(
            config, batch_sentences=batch_sentences or 1024
        )
        hs_model = hs_trainer.train(corpus, num_nodes, seed=seed)
        assert hs_trainer.last_stats is not None
        return NodeEmbeddings(hs_model.w_in), hs_trainer.last_stats
    if objective != "negative-sampling":
        raise EmbeddingError(
            f"unknown objective {objective!r}; options: "
            "'negative-sampling', 'hierarchical-softmax'"
        )
    if batch_sentences is None:
        trainer: SequentialSgnsTrainer | BatchedSgnsTrainer = (
            SequentialSgnsTrainer(config)
        )
    else:
        trainer = BatchedSgnsTrainer(config, batch_sentences=batch_sentences)
    model = trainer.train(corpus, num_nodes, seed=seed)
    assert trainer.last_stats is not None
    return NodeEmbeddings(model.w_in), trainer.last_stats
