"""Hierarchical-softmax word2vec (the alternative to negative sampling).

word2vec offers two output objectives; the paper's implementations use
negative sampling (§IV-A.2), but hierarchical softmax is part of the
word2vec framework it builds on and gives the library a second,
structurally different objective for ablation: O(log V) binary decisions
along a Huffman path instead of K sampled negatives.

The loss for a (center c, context o) pair is

    L = -sum_i log sigmoid( (1 - 2 b_i) * v_c . u_{n_i} )

where ``n_i`` are the inner tree nodes on o's root-to-leaf path and
``b_i`` the branch bits.  Frequent nodes get short codes (cheap updates),
which on power-law walk corpora concentrates work exactly like hub rows
do under negative sampling.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.errors import EmbeddingError
from repro.rng import SeedLike, make_rng
from repro.embedding.skipgram import sigmoid


class HuffmanTree:
    """Huffman coding of node ids weighted by corpus frequency.

    Exposes per-leaf padded path/code matrices so batched training can
    gather them without Python loops:

    - ``paths``: ``(V, max_code_length)`` inner-node ids, padded with 0;
    - ``codes``: same shape, branch bits, padded with 0;
    - ``code_lengths``: true path length per leaf.
    """

    def __init__(self, counts: np.ndarray) -> None:
        counts = np.ascontiguousarray(counts, dtype=np.int64)
        if counts.ndim != 1 or len(counts) == 0:
            raise EmbeddingError("counts must be a non-empty 1-D array")
        if counts.min() < 0:
            raise EmbeddingError("counts must be non-negative")
        self.num_leaves = len(counts)
        # Zero-count leaves still need codes (they may appear as centers
        # of inference-time queries); give them weight 1.
        weights = np.maximum(counts, 1)

        num_inner = max(1, self.num_leaves - 1)
        parent = np.zeros(self.num_leaves + num_inner, dtype=np.int64)
        branch = np.zeros(self.num_leaves + num_inner, dtype=np.int8)

        heap: list[tuple[int, int]] = [
            (int(w), i) for i, w in enumerate(weights)
        ]
        heapq.heapify(heap)
        next_inner = self.num_leaves
        while len(heap) > 1:
            w0, n0 = heapq.heappop(heap)
            w1, n1 = heapq.heappop(heap)
            parent[n0] = next_inner
            parent[n1] = next_inner
            branch[n0] = 0
            branch[n1] = 1
            heapq.heappush(heap, (w0 + w1, next_inner))
            next_inner += 1
        self._root = heap[0][1] if heap else 0
        self._num_inner_used = next_inner - self.num_leaves

        # Walk each leaf up to the root, then reverse to root-to-leaf.
        raw_paths: list[list[int]] = []
        raw_codes: list[list[int]] = []
        for leaf in range(self.num_leaves):
            path: list[int] = []
            code: list[int] = []
            node = leaf
            while node != self._root and self._num_inner_used > 0:
                path.append(int(parent[node]) - self.num_leaves)
                code.append(int(branch[node]))
                node = int(parent[node])
            path.reverse()
            code.reverse()
            raw_paths.append(path)
            raw_codes.append(code)

        self.code_lengths = np.array([len(p) for p in raw_paths],
                                     dtype=np.int64)
        self.max_code_length = max(1, int(self.code_lengths.max()))
        self.paths = np.zeros((self.num_leaves, self.max_code_length),
                              dtype=np.int64)
        self.codes = np.zeros((self.num_leaves, self.max_code_length),
                              dtype=np.int8)
        for leaf, (path, code) in enumerate(zip(raw_paths, raw_codes)):
            self.paths[leaf, : len(path)] = path
            self.codes[leaf, : len(code)] = code

    @property
    def num_inner(self) -> int:
        """Number of inner (non-leaf) tree nodes."""
        return max(1, self._num_inner_used)

    def mean_code_length(self, counts: np.ndarray) -> float:
        """Frequency-weighted mean code length (the expected work/pair)."""
        counts = np.asarray(counts, dtype=np.float64)
        total = counts.sum()
        if total == 0:
            return float(self.code_lengths.mean())
        return float(np.dot(self.code_lengths, counts) / total)


class HierarchicalSoftmaxModel:
    """Skip-gram with a hierarchical-softmax output layer."""

    def __init__(self, counts: np.ndarray, dim: int,
                 seed: SeedLike = None) -> None:
        if dim < 1:
            raise EmbeddingError(f"dim must be >= 1, got {dim}")
        rng = make_rng(seed)
        self.tree = HuffmanTree(counts)
        num_nodes = self.tree.num_leaves
        self.w_in = (rng.random((num_nodes, dim)) - 0.5) / dim
        self.w_inner = np.zeros((self.tree.num_inner, dim), dtype=np.float64)

    @property
    def num_nodes(self) -> int:
        """Number of nodes (vocabulary size)."""
        return self.w_in.shape[0]

    @property
    def dim(self) -> int:
        """Embedding dimensionality."""
        return self.w_in.shape[1]

    # ------------------------------------------------------------------
    def batch_gradients(
        self, centers: np.ndarray, contexts: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, float]:
        """Gradients for a batch of pairs against the current weights.

        Returns ``(grad_center, grad_inner, paths, mask, mean_loss)``:
        ``grad_inner`` has shape ``(B, L, d)`` aligned with ``paths``
        ``(B, L)``; padded path positions carry zero gradient via
        ``mask``.
        """
        tree = self.tree
        paths = tree.paths[contexts]                    # (B, L)
        codes = tree.codes[contexts].astype(np.float64)  # (B, L)
        lengths = tree.code_lengths[contexts]
        mask = (
            np.arange(tree.max_code_length)[None, :] < lengths[:, None]
        ).astype(np.float64)

        v_c = self.w_in[centers]                        # (B, d)
        u_n = self.w_inner[paths]                       # (B, L, d)
        scores = np.einsum("bd,bld->bl", v_c, u_n)      # (B, L)
        # Target for sigmoid(score) is 1 when the branch bit is 0.
        sig = sigmoid(scores)
        err = (sig - (1.0 - codes)) * mask              # dL/dscore

        grad_center = np.einsum("bl,bld->bd", err, u_n)
        grad_inner = err[:, :, None] * v_c[:, None, :]

        with np.errstate(divide="ignore"):
            probs = np.where(codes > 0.5, 1.0 - sig, sig)
            loss = -(np.log(np.maximum(probs, 1e-12)) * mask).sum(axis=1)
        return grad_center, grad_inner, paths, mask, float(loss.mean())

    def apply_batch(
        self,
        centers: np.ndarray,
        grad_center: np.ndarray,
        grad_inner: np.ndarray,
        paths: np.ndarray,
        mask: np.ndarray,
        lr: float,
        update: str = "capped",
        cap: int = 128,
    ) -> None:
        """Scatter updates with the same combining modes as SGNS."""
        from repro.embedding.skipgram import SkipGramModel

        SkipGramModel._scatter(self.w_in, centers, grad_center, lr,
                               update, cap)
        flat_rows = paths.reshape(-1)
        flat_grads = grad_inner.reshape(len(flat_rows), -1)
        keep = mask.reshape(-1) > 0
        SkipGramModel._scatter(
            self.w_inner, flat_rows[keep], flat_grads[keep], lr, update, cap
        )

    # ------------------------------------------------------------------
    def pair_loss(self, center: int, context: int) -> float:
        """Loss of one pair (for gradient-check tests)."""
        *_, loss = self.batch_gradients(
            np.array([center]), np.array([context])
        )
        return loss

    def context_probability(self, center: int, context: int) -> float:
        """Exact P(context | center) under the hierarchical softmax."""
        tree = self.tree
        length = int(tree.code_lengths[context])
        prob = 1.0
        v_c = self.w_in[center]
        for i in range(length):
            inner = tree.paths[context, i]
            score = float(np.dot(v_c, self.w_inner[inner]))
            p = 1.0 / (1.0 + np.exp(-score))
            prob *= p if tree.codes[context, i] == 0 else (1.0 - p)
        return prob


class BatchedHsTrainer:
    """Batched skip-gram training with the hierarchical-softmax objective.

    Mirrors :class:`repro.embedding.BatchedSgnsTrainer`'s batching and
    stale-update semantics so the two objectives are directly comparable
    in the word2vec-objective ablation.
    """

    def __init__(self, config, batch_sentences: int = 1024) -> None:
        if batch_sentences < 1:
            raise EmbeddingError(
                f"batch_sentences must be >= 1, got {batch_sentences}"
            )
        self.config = config
        self.batch_sentences = batch_sentences
        self.last_stats = None

    def train(self, corpus, num_nodes: int, seed: SeedLike = None
              ) -> HierarchicalSoftmaxModel:
        """Train over the corpus; returns the fitted model."""
        import time

        from repro.embedding.skipgram import generate_pairs
        from repro.embedding.trainer import TrainerStats
        from repro.embedding.vocab import Vocabulary

        cfg = self.config
        rng = make_rng(seed)
        vocab = Vocabulary.from_corpus(corpus, num_nodes)
        model = HierarchicalSoftmaxModel(vocab.counts, cfg.dim, seed=rng)

        stats = TrainerStats()
        start = time.perf_counter()
        sentences = [s for s in corpus.sentences(min_length=2)]
        total_batches = cfg.epochs * max(
            1, -(-len(sentences) // self.batch_sentences)
        )
        batch_index = 0
        loss_accum = 0.0
        for _epoch in range(cfg.epochs):
            for base in range(0, len(sentences), self.batch_sentences):
                batch = sentences[base: base + self.batch_sentences]
                centers_parts, contexts_parts = [], []
                for sentence in batch:
                    c, o = generate_pairs(
                        sentence, cfg.window, rng, cfg.dynamic_window
                    )
                    if len(c):
                        centers_parts.append(c)
                        contexts_parts.append(o)
                frac = min(1.0, batch_index / total_batches)
                lr = max(cfg.min_learning_rate,
                         cfg.learning_rate * (1.0 - frac))
                batch_index += 1
                stats.sentences += len(batch)
                if not centers_parts:
                    continue
                centers = np.concatenate(centers_parts)
                contexts = np.concatenate(contexts_parts)
                gc, gi, paths, mask, loss = model.batch_gradients(
                    centers, contexts
                )
                model.apply_batch(
                    centers, gc, gi, paths, mask, lr,
                    update=cfg.update_mode, cap=cfg.update_cap,
                )
                stats.pairs_trained += len(centers)
                stats.updates += 1
                stats.fp_ops += int(
                    len(centers) * model.tree.max_code_length * 4 * cfg.dim
                )
                # Pair-weighted, like the SGNS trainers: mean_loss is
                # per-pair regardless of batch size.
                loss_accum += loss * len(centers)
                stats.losses.append(loss)
        stats.wall_seconds = time.perf_counter() - start
        stats.mean_loss = loss_accum / max(1, stats.pairs_trained)
        self.last_stats = stats
        return model
