"""Skip-gram with negative sampling: model parameters and gradients.

The SGNS objective for a (center, context) pair with negatives
``n_1..n_K`` is

    L = -log sigma(v_c . u_o) - sum_k log sigma(-v_c . u_{n_k})

where ``v`` rows live in the input matrix (the embeddings the pipeline
keeps) and ``u`` rows in the output matrix.  Both trainers share this
module's math so the sequential and batched paths are provably the same
model; they differ only in *when* parameter updates become visible.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import EmbeddingError
from repro.rng import SeedLike, make_rng


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    out = np.empty_like(x, dtype=np.float64)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def generate_pairs(
    sentence: np.ndarray,
    window: int,
    rng: np.random.Generator,
    dynamic_window: bool = True,
) -> tuple[np.ndarray, np.ndarray]:
    """Emit (center, context) pairs from one walk.

    Mirrors word2vec: for each center position, the effective window
    shrinks to a uniform random ``b in [1, window]`` (``dynamic_window``),
    which implicitly weights near contexts higher.  Returns parallel
    center/context arrays; a sentence of < 2 nodes yields no pairs.
    """
    n = len(sentence)
    if n < 2:
        return (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
    if dynamic_window:
        spans = rng.integers(1, window + 1, size=n)
    else:
        spans = np.full(n, window, dtype=np.int64)
    # Vectorized construction of the (center, context) stream in the
    # exact order of the natural double loop: centers ascend, and each
    # center's contexts ascend over [lo, hi) skipping the center itself.
    idx = np.arange(n, dtype=np.int64)
    lo = np.maximum(0, idx - spans)
    hi = np.minimum(n, idx + spans + 1)
    counts = hi - lo - 1  # the center position is excluded
    total = int(counts.sum())
    if total == 0:
        return (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
    center_idx = np.repeat(idx, counts)
    offsets = np.zeros(n, dtype=np.int64)
    np.cumsum(counts[:-1], out=offsets[1:])
    within = np.arange(total, dtype=np.int64) - np.repeat(offsets, counts)
    context_idx = np.repeat(lo, counts) + within
    context_idx += context_idx >= center_idx  # hop over the center
    sent = np.ascontiguousarray(sentence, dtype=np.int64)
    return (sent[center_idx], sent[context_idx])


class SkipGramModel:
    """SGNS parameter matrices with batched loss/gradient evaluation."""

    def __init__(self, num_nodes: int, dim: int, seed: SeedLike = None) -> None:
        if num_nodes < 1:
            raise EmbeddingError(f"num_nodes must be >= 1, got {num_nodes}")
        if dim < 1:
            raise EmbeddingError(f"dim must be >= 1, got {dim}")
        rng = make_rng(seed)
        # word2vec initialization: small uniform input vectors, zero output.
        self.w_in = (rng.random((num_nodes, dim)) - 0.5) / dim
        self.w_out = np.zeros((num_nodes, dim), dtype=np.float64)

    @property
    def num_nodes(self) -> int:
        """Number of nodes (vocabulary size)."""
        return self.w_in.shape[0]

    @property
    def dim(self) -> int:
        """Embedding dimensionality."""
        return self.w_in.shape[1]

    def grow(self, new_num_nodes: int, seed: SeedLike = None) -> None:
        """Extend the vocabulary to ``new_num_nodes`` rows in place.

        New input rows get the standard word2vec small-uniform init and
        new output rows zeros; existing rows are untouched.  Used by the
        incremental pipeline when appended edges introduce unseen nodes.
        """
        if new_num_nodes < self.num_nodes:
            raise EmbeddingError(
                f"cannot shrink vocabulary from {self.num_nodes} to "
                f"{new_num_nodes}"
            )
        if new_num_nodes == self.num_nodes:
            return
        rng = make_rng(seed)
        extra = new_num_nodes - self.num_nodes
        new_in = (rng.random((extra, self.dim)) - 0.5) / self.dim
        self.w_in = np.vstack([self.w_in, new_in])
        self.w_out = np.vstack(
            [self.w_out, np.zeros((extra, self.dim), dtype=np.float64)]
        )

    # ------------------------------------------------------------------
    def batch_gradients(
        self,
        centers: np.ndarray,
        contexts: np.ndarray,
        negatives: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, float]:
        """Evaluate gradients for a batch of pairs against *current* weights.

        ``centers``/``contexts`` have shape ``(B,)``; ``negatives`` has
        shape ``(B, K)``.  Returns ``(grad_center, grad_context,
        grad_negatives, mean_loss)`` where gradient shapes match the
        corresponding embedding gathers.  All pairs read the same weight
        snapshot — applying these with a scatter-add is exactly the stale
        "concurrent model update" the paper's batched GPU kernel performs.
        """
        v_c = self.w_in[centers]           # (B, d)
        u_o = self.w_out[contexts]         # (B, d)
        u_n = self.w_out[negatives]        # (B, K, d)

        pos_score = np.einsum("bd,bd->b", v_c, u_o)
        neg_score = np.einsum("bd,bkd->bk", v_c, u_n)

        pos_sig = sigmoid(pos_score)           # want -> 1
        neg_sig = sigmoid(neg_score)           # want -> 0

        # dL/dscore: (sigma - target)
        pos_err = (pos_sig - 1.0)[:, None]      # (B, 1)
        neg_err = neg_sig[:, :, None]           # (B, K, 1)

        grad_context = pos_err * v_c                       # (B, d)
        grad_negatives = neg_err * v_c[:, None, :]         # (B, K, d)
        grad_center = pos_err * u_o + np.einsum("bk,bkd->bd", neg_sig, u_n)

        with np.errstate(divide="ignore"):
            loss = -np.log(np.maximum(pos_sig, 1e-12)) - np.sum(
                np.log(np.maximum(1.0 - neg_sig, 1e-12)), axis=1
            )
        return grad_center, grad_context, grad_negatives, float(loss.mean())

    def apply_batch(
        self,
        centers: np.ndarray,
        contexts: np.ndarray,
        negatives: np.ndarray,
        grad_center: np.ndarray,
        grad_context: np.ndarray,
        grad_negatives: np.ndarray,
        lr: float,
        update: str = "capped",
        cap: int = 128,
    ) -> None:
        """Apply the batch's gradients with one scatter per matrix.

        Modes control how gradients landing on the same embedding row
        combine — the knob that decides how faithful the batch is to
        hogwild's sequential-apply semantics on power-law graphs, where a
        hub row appears in thousands of pairs per batch:

        - ``"sum"`` — plain accumulation: exact for distinct rows but
          compounds on hubs and can diverge on power-law graphs (shown by
          the ``bench_ablation_w2v_update`` experiment);
        - ``"mean"`` — each row moves one pair-sized step per batch:
          unconditionally stable but starves hub rows of progress;
        - ``"sqrt"`` — divides by ``sqrt(count)``: sublinear hub steps;
        - ``"capped"`` (default) — full sum up to ``cap`` contributions
          per row, then scaled down proportionally (equivalently
          ``mean * min(count, cap)``).  This mirrors what racy concurrent
          GPU updates achieve in practice — cold rows get exact hogwild
          progress, hot rows saturate — and it is the mode that matches
          the paper's "batching costs no accuracy" result on both
          community graphs and hub-heavy interaction graphs.
        """
        if update not in ("mean", "sum", "sqrt", "capped"):
            raise EmbeddingError(
                f"update must be one of 'mean', 'sum', 'sqrt', 'capped'; "
                f"got {update!r}"
            )
        self._scatter(self.w_in, centers, grad_center, lr, update, cap)
        flat_neg = negatives.reshape(-1)
        out_rows = np.concatenate([contexts, flat_neg])
        out_grads = np.concatenate(
            [grad_context, grad_negatives.reshape(len(flat_neg), -1)], axis=0
        )
        self._scatter(self.w_out, out_rows, out_grads, lr, update, cap)

    @staticmethod
    def _scatter(
        matrix: np.ndarray,
        rows: np.ndarray,
        grads: np.ndarray,
        lr: float,
        update: str,
        cap: int,
    ) -> None:
        uniq, inverse = np.unique(rows, return_inverse=True)
        acc = np.zeros((len(uniq), matrix.shape[1]), dtype=np.float64)
        np.add.at(acc, inverse, grads)
        counts = np.bincount(inverse)
        if update == "mean":
            acc /= counts[:, None]
        elif update == "sqrt":
            acc /= np.sqrt(counts)[:, None]
        elif update == "capped":
            acc /= np.maximum(1.0, counts / cap)[:, None]
        matrix[uniq] -= lr * acc

    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Persist both matrices (resume incremental training later)."""
        np.savez_compressed(path, w_in=self.w_in, w_out=self.w_out)

    @classmethod
    def load(cls, path) -> "SkipGramModel":
        """Load a model saved by :meth:`save`."""
        with np.load(path) as data:
            missing = {"w_in", "w_out"} - set(data.files)
            if missing:
                raise EmbeddingError(
                    f"{path}: missing arrays {sorted(missing)}"
                )
            model = cls.__new__(cls)
            model.w_in = np.ascontiguousarray(data["w_in"],
                                              dtype=np.float64)
            model.w_out = np.ascontiguousarray(data["w_out"],
                                               dtype=np.float64)
            if model.w_in.shape != model.w_out.shape:
                raise EmbeddingError(
                    f"{path}: w_in {model.w_in.shape} and w_out "
                    f"{model.w_out.shape} shapes differ"
                )
            return model

    # ------------------------------------------------------------------
    def pair_loss(self, center: int, context: int, negatives: np.ndarray) -> float:
        """Loss of a single pair (used by gradient-check tests)."""
        _, _, _, loss = self.batch_gradients(
            np.array([center]), np.array([context]),
            np.asarray(negatives, dtype=np.int64)[None, :],
        )
        return loss
