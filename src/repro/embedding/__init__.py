"""word2vec over walk corpora (the pipeline's RW-P2 phase).

The paper trains skip-gram with negative sampling (SGNS) on the temporal
walks to produce d-dimensional node embeddings, and contributes a batched
GPU implementation whose headline result is a 124.2x speedup from
processing 16k sentences per batch with stale intra-batch reads (Fig. 5)
plus further microarchitectural optimizations (Fig. 6).

The numpy analogues:

- :class:`SequentialSgnsTrainer` — sentence-at-a-time, pair-at-a-time
  updates (the open-source CPU implementation's structure; also the
  "no batching" GPU baseline whose per-sentence overhead mirrors
  kernel-launch overhead).
- :class:`BatchedSgnsTrainer` — gathers pairs from a batch of sentences
  and applies one vectorized update per batch, reading stale embeddings
  within the batch exactly as §V-B describes.
"""

from repro.embedding.vocab import Vocabulary
from repro.embedding.negative import AliasTable, NegativeSampler
from repro.embedding.skipgram import SkipGramModel, generate_pairs
from repro.embedding.trainer import SgnsConfig, SequentialSgnsTrainer, TrainerStats
from repro.embedding.batched import BatchedSgnsTrainer
from repro.embedding.hsoftmax import (
    BatchedHsTrainer,
    HierarchicalSoftmaxModel,
    HuffmanTree,
)
from repro.embedding.embeddings import NodeEmbeddings, train_embeddings

__all__ = [
    "Vocabulary",
    "AliasTable",
    "NegativeSampler",
    "SkipGramModel",
    "generate_pairs",
    "SgnsConfig",
    "SequentialSgnsTrainer",
    "BatchedSgnsTrainer",
    "BatchedHsTrainer",
    "HierarchicalSoftmaxModel",
    "HuffmanTree",
    "TrainerStats",
    "NodeEmbeddings",
    "train_embeddings",
]
