"""Vocabulary over graph nodes.

In the graph-learning setting the "words" are node ids, which are already
dense integers, so the vocabulary's job reduces to occurrence counting
(for the unigram^0.75 negative-sampling distribution) and optional
frequent-node subsampling (word2vec's ``t = 1e-3`` heuristic, which on
hub-dominated graphs keeps super-hubs from swamping the corpus).
"""

from __future__ import annotations

import numpy as np

from repro.errors import EmbeddingError
from repro.rng import SeedLike, make_rng
from repro.walk.corpus import WalkCorpus


class Vocabulary:
    """Node occurrence statistics over a walk corpus."""

    def __init__(self, counts: np.ndarray) -> None:
        self.counts = np.ascontiguousarray(counts, dtype=np.int64)
        if self.counts.ndim != 1:
            raise EmbeddingError("counts must be 1-D (one entry per node id)")
        if len(self.counts) and self.counts.min() < 0:
            raise EmbeddingError("counts must be non-negative")
        self.total = int(self.counts.sum())

    @classmethod
    def from_corpus(cls, corpus: WalkCorpus, num_nodes: int) -> "Vocabulary":
        """Count every node occurrence in the corpus."""
        return cls(corpus.node_frequencies(num_nodes))

    @property
    def num_nodes(self) -> int:
        """Number of nodes (vocabulary size)."""
        return len(self.counts)

    def frequency(self, node: int) -> float:
        """Relative corpus frequency of ``node``."""
        if self.total == 0:
            return 0.0
        return float(self.counts[node]) / self.total

    def unigram_weights(self, power: float = 0.75) -> np.ndarray:
        """The smoothed unigram distribution ``count^power`` (unnormalized).

        ``power=0.75`` is the word2vec negative-sampling smoothing; nodes
        absent from the corpus get weight 0 and are never drawn as
        negatives.
        """
        return self.counts.astype(np.float64) ** power

    def keep_probabilities(self, threshold: float = 1e-3) -> np.ndarray:
        """word2vec subsampling keep-probability per node.

        ``P_keep(w) = min(1, sqrt(t / f(w)) + t / f(w))`` where ``f`` is
        relative frequency.  Nodes rarer than the threshold are always
        kept.
        """
        if self.total == 0:
            return np.ones_like(self.counts, dtype=np.float64)
        freq = self.counts / self.total
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = threshold / np.where(freq > 0, freq, 1.0)
            keep = np.sqrt(ratio) + ratio
        return np.minimum(1.0, np.where(freq > 0, keep, 1.0))

    def subsample_sentence(
        self,
        sentence: np.ndarray,
        keep_probs: np.ndarray,
        rng_or_seed: SeedLike = None,
    ) -> np.ndarray:
        """Drop frequent nodes from one sentence per ``keep_probs``."""
        rng = make_rng(rng_or_seed)
        mask = rng.random(len(sentence)) < keep_probs[sentence]
        return sentence[mask]
