"""Negative sampling for SGNS.

word2vec draws "negative" context nodes from the smoothed unigram
distribution ``P(w) proportional to count(w)^0.75``.  We implement the
draw with Walker's alias method — O(V) build, O(1) per sample — which is
also a reusable substrate (the hardware models use it for synthetic
address streams).
"""

from __future__ import annotations

import numpy as np

from repro.errors import EmbeddingError
from repro.rng import SeedLike, make_rng
from repro.embedding.vocab import Vocabulary


class AliasTable:
    """Walker alias method for O(1) categorical sampling.

    Build from any non-negative weight vector; ``sample(n, rng)`` draws
    ``n`` iid indices with probability proportional to the weights.
    """

    def __init__(self, weights: np.ndarray) -> None:
        weights = np.ascontiguousarray(weights, dtype=np.float64)
        if weights.ndim != 1 or len(weights) == 0:
            raise EmbeddingError("weights must be a non-empty 1-D array")
        if weights.min() < 0:
            raise EmbeddingError("weights must be non-negative")
        total = weights.sum()
        if total <= 0:
            raise EmbeddingError("weights must not all be zero")
        n = len(weights)
        prob = weights * (n / total)
        self.prob = np.ones(n, dtype=np.float64)
        self.alias = np.arange(n, dtype=np.int64)

        small = [i for i in range(n) if prob[i] < 1.0]
        large = [i for i in range(n) if prob[i] >= 1.0]
        while small and large:
            s = small.pop()
            l = large.pop()
            self.prob[s] = prob[s]
            self.alias[s] = l
            prob[l] = prob[l] - (1.0 - prob[s])
            if prob[l] < 1.0:
                small.append(l)
            else:
                large.append(l)
        # Leftovers are 1.0 within float error; keep their own index.
        for i in small + large:
            self.prob[i] = 1.0
            self.alias[i] = i

    def __len__(self) -> int:
        return len(self.prob)

    def sample(self, size: int, rng_or_seed: SeedLike = None) -> np.ndarray:
        """Draw ``size`` iid indices from the weighted distribution."""
        rng = make_rng(rng_or_seed)
        slots = rng.integers(0, len(self.prob), size=size)
        accept = rng.random(size) < self.prob[slots]
        return np.where(accept, slots, self.alias[slots])

    def probabilities(self) -> np.ndarray:
        """Reconstruct the exact distribution the table samples from.

        Each slot contributes ``prob/n`` to itself and ``(1-prob)/n`` to
        its alias; used by property tests to verify the construction.
        """
        n = len(self.prob)
        out = np.zeros(n, dtype=np.float64)
        np.add.at(out, np.arange(n), self.prob / n)
        np.add.at(out, self.alias, (1.0 - self.prob) / n)
        return out


class NegativeSampler:
    """Draws negative context nodes from the unigram^0.75 distribution."""

    def __init__(self, vocab: Vocabulary, power: float = 0.75) -> None:
        weights = vocab.unigram_weights(power)
        if weights.sum() <= 0:
            raise EmbeddingError(
                "corpus is empty: no node has positive frequency to sample"
            )
        self.table = AliasTable(weights)

    def sample(self, size: int, rng_or_seed: SeedLike = None) -> np.ndarray:
        """Draw ``size`` negative node ids (iid, may repeat)."""
        return self.table.sample(size, rng_or_seed)

    def sample_matrix(
        self, rows: int, cols: int, rng_or_seed: SeedLike = None
    ) -> np.ndarray:
        """Draw a ``(rows, cols)`` matrix of negatives (one row per pair)."""
        return self.sample(rows * cols, rng_or_seed).reshape(rows, cols)
