"""node2vec: second-order biased static walks.

The paper's related work (§II-A) places node2vec next to DeepWalk as
the standard static random-walk embedding family; its return parameter
``p`` and in-out parameter ``q`` interpolate between BFS-like and
DFS-like exploration.  Provided as a second static baseline so the
temporal-vs-static ablations aren't hostage to DeepWalk's uniform
first-order behaviour.

Complexity: each step scores every neighbor of the current node against
the previous node's (dst-sorted) adjacency — the classic O(deg x log
deg) second-order cost; this baseline is meant for the ablation scale,
not the hardware-study graphs.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WalkError
from repro.graph.csr import TemporalGraph
from repro.rng import SeedLike, make_rng
from repro.walk.config import WalkConfig
from repro.walk.corpus import PAD, WalkCorpus


class Node2VecWalker:
    """Second-order walker with return parameter p and in-out parameter q."""

    def __init__(self, graph: TemporalGraph, p: float = 1.0,
                 q: float = 1.0) -> None:
        if p <= 0 or q <= 0:
            raise WalkError(f"p and q must be positive, got p={p}, q={q}")
        self.graph = graph
        self.p = p
        self.q = q
        # Per-node dst-sorted adjacency for O(log deg) membership tests.
        self._sorted_dst: list[np.ndarray] = []
        for node in range(graph.num_nodes):
            dsts, _ = graph.neighbors(node)
            self._sorted_dst.append(np.sort(dsts))

    def _is_neighbor(self, node: int, candidate: int) -> bool:
        arr = self._sorted_dst[node]
        index = np.searchsorted(arr, candidate)
        return bool(index < len(arr) and arr[index] == candidate)

    def _step_weights(self, prev: int, candidates: np.ndarray) -> np.ndarray:
        weights = np.empty(len(candidates), dtype=np.float64)
        for i, candidate in enumerate(candidates):
            c = int(candidate)
            if c == prev:
                weights[i] = 1.0 / self.p          # return
            elif self._is_neighbor(prev, c):
                weights[i] = 1.0                   # stay local (BFS-like)
            else:
                weights[i] = 1.0 / self.q          # move outward (DFS-like)
        return weights

    def run(
        self,
        config: WalkConfig,
        seed: SeedLike = None,
        start_nodes: np.ndarray | None = None,
    ) -> WalkCorpus:
        """Generate K second-order walks per start node (timestamp-blind)."""
        graph = self.graph
        rng = make_rng(seed)
        if start_nodes is None:
            start_nodes = np.arange(graph.num_nodes, dtype=np.int64)
        k = config.num_walks_per_node
        starts = np.tile(np.asarray(start_nodes, dtype=np.int64), k)
        num_walks = len(starts)
        matrix = np.full((num_walks, config.max_walk_length), PAD,
                         dtype=np.int64)
        lengths = np.ones(num_walks, dtype=np.int64)

        for row, start in enumerate(starts):
            current = int(start)
            previous: int | None = None
            matrix[row, 0] = current
            for step in range(1, config.max_walk_length):
                candidates, _ = graph.neighbors(current)
                if len(candidates) == 0:
                    break
                if previous is None:
                    choice = int(candidates[rng.integers(0, len(candidates))])
                else:
                    weights = self._step_weights(previous, candidates)
                    probabilities = weights / weights.sum()
                    choice = int(candidates[
                        rng.choice(len(candidates), p=probabilities)
                    ])
                matrix[row, step] = choice
                lengths[row] = step + 1
                previous = current
                current = choice
        return WalkCorpus(matrix, lengths, start_nodes=starts)
