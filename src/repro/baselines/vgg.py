"""VGG-16: the dense deep-learning contrast workload.

Two roles in the paper:

1. Fig. 3 includes VGG inference (ImageNet-shaped input) as the
   regular, compute-dense extreme of the comparison.
2. §VII-B measures that the pipeline's classifier is 37.4x slower *per
   instruction* than VGG because its GEMMs are tiny ("the largest layer
   size in VGG is 3136x larger"), i.e. GEMM libraries are optimized for
   big dense shapes.  :func:`gemm_seconds_per_flop` re-measures that
   effect for real with numpy GEMMs of both shapes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.hwmodel.gpu import GpuKernelModel
from repro.rng import SeedLike, make_rng

# VGG-16 convolution layers expressed as im2col GEMMs for a 224x224x3
# input: (M, K, N) = (spatial output positions, kernel fan-in, output
# channels); the three classifier layers follow.
VGG16_LAYERS: list[tuple[int, int, int]] = [
    (224 * 224, 3 * 3 * 3, 64),
    (224 * 224, 3 * 3 * 64, 64),
    (112 * 112, 3 * 3 * 64, 128),
    (112 * 112, 3 * 3 * 128, 128),
    (56 * 56, 3 * 3 * 128, 256),
    (56 * 56, 3 * 3 * 256, 256),
    (56 * 56, 3 * 3 * 256, 256),
    (28 * 28, 3 * 3 * 256, 512),
    (28 * 28, 3 * 3 * 512, 512),
    (28 * 28, 3 * 3 * 512, 512),
    (14 * 14, 3 * 3 * 512, 512),
    (14 * 14, 3 * 3 * 512, 512),
    (14 * 14, 3 * 3 * 512, 512),
    (1, 7 * 7 * 512, 4096),
    (1, 4096, 4096),
    (1, 4096, 1000),
]


@dataclass
class VggModel:
    """VGG-16 inference workload description."""

    layers: list[tuple[int, int, int]]
    batch_size: int = 1

    @classmethod
    def vgg16(cls, batch_size: int = 1) -> "VggModel":
        """The standard VGG-16 layer stack at ``batch_size``."""
        return cls(layers=list(VGG16_LAYERS), batch_size=batch_size)

    def total_flops(self) -> float:
        """Total GEMM flops of one inference pass."""
        return sum(2.0 * self.batch_size * m * k * n for m, k, n in self.layers)

    def total_bytes(self) -> float:
        """Total operand bytes touched across all layers."""
        return sum(
            4.0 * (self.batch_size * m * k + k * n + self.batch_size * m * n)
            for m, k, n in self.layers
        )

    def largest_layer_elements(self) -> int:
        """Max weight-matrix element count (the 3136x comparison basis)."""
        return max(k * n for _, k, n in self.layers)

    def gpu_kernel(self) -> GpuKernelModel:
        """GPU model of VGG inference for the Fig. 3 comparison."""
        flops = self.total_flops()
        bytes_touched = self.total_bytes()
        items = sum(self.batch_size * m * n for m, _, n in self.layers) / 4.0
        return GpuKernelModel(
            name="vgg",
            items=items,
            fp_per_item=flops / items,
            loads_per_item=bytes_touched / 4.0 / items,
            bytes_per_item=bytes_touched / items,
            serial_fp_chain=1.0,
            irregular_fraction=0.0,       # perfectly streaming
            divergence_cv=0.0,
            working_set_bytes=bytes_touched / len(self.layers),
            kernel_launches=len(self.layers),
            transfer_bytes=self.batch_size * 224 * 224 * 3 * 4.0,
        )

    def forward_seconds(self, seed: SeedLike = None) -> float:
        """Actually run the GEMM sequence in numpy and time it.

        Real measured dense-GEMM time on this host — the honest half of
        the §VII-B per-instruction comparison.
        """
        rng = make_rng(seed)
        total = 0.0
        for m, k, n in self.layers:
            a = rng.random((self.batch_size * m, k), dtype=np.float64)
            b = rng.random((k, n), dtype=np.float64)
            start = time.perf_counter()
            a @ b
            total += time.perf_counter() - start
        return total


def gemm_seconds_per_flop(
    m: int, k: int, n: int, repeats: int = 3, seed: SeedLike = None
) -> float:
    """Measured seconds-per-flop of one numpy GEMM shape.

    Comparing a VGG-sized shape against the pipeline's classifier shapes
    reproduces §VII-B's size-gap finding: small GEMMs run at a far worse
    per-flop rate than large ones on the same BLAS.
    """
    rng = make_rng(seed)
    a = rng.random((m, k))
    b = rng.random((k, n))
    a @ b  # warm up BLAS threads
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        a @ b
        best = min(best, time.perf_counter() - start)
    flops = 2.0 * m * k * n
    return best / flops
