"""Comparison workloads.

Fig. 3 contrasts the pipeline's kernels against a pure graph traversal
(BFS on a Rodinia-style synthetic graph), dense deep-learning inference
(VGG on ImageNet-shaped inputs), and GCN inference (Reddit-shaped input).
This package implements all three plus a static DeepWalk baseline used to
ablate the value of temporal information.
"""

from repro.baselines.bfs import BfsResult, bfs, bfs_gpu_kernel
from repro.baselines.vgg import VGG16_LAYERS, VggModel, gemm_seconds_per_flop
from repro.baselines.gcn import GcnModel, gcn_gpu_kernel
from repro.baselines.deepwalk import run_static_walks
from repro.baselines.snapshot_model import snapshot_embeddings

__all__ = [
    "BfsResult",
    "bfs",
    "bfs_gpu_kernel",
    "VGG16_LAYERS",
    "VggModel",
    "gemm_seconds_per_flop",
    "GcnModel",
    "gcn_gpu_kernel",
    "run_static_walks",
    "snapshot_embeddings",
]
