"""Snapshot-model baseline (§II-B's dominant prior approach).

Most pre-CTDNE temporal methods process the graph as a sequence of
static snapshots: embed each snapshot with static walks and combine.
The paper argues this loses fine-grained temporal information.  This
module implements the standard cumulative-snapshot pipeline so the claim
is testable: static DeepWalk per snapshot, embeddings combined by
recency-weighted averaging.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.deepwalk import run_static_walks
from repro.embedding.embeddings import NodeEmbeddings
from repro.embedding.trainer import SgnsConfig
from repro.embedding.batched import BatchedSgnsTrainer
from repro.errors import ModelError
from repro.graph.csr import TemporalGraph
from repro.graph.snapshots import snapshot_sequence
from repro.rng import SeedLike, make_rng
from repro.walk.config import WalkConfig


def snapshot_embeddings(
    graph: TemporalGraph,
    num_snapshots: int,
    walk_config: WalkConfig | None = None,
    sgns_config: SgnsConfig | None = None,
    recency_half_life: float = 1.0,
    batch_sentences: int = 1024,
    seed: SeedLike = None,
) -> NodeEmbeddings:
    """Embed via the cumulative-snapshot model.

    Each snapshot gets independent static-DeepWalk embeddings; the final
    representation is the recency-weighted average (weight ``0.5 **
    (age / half_life)`` with age in snapshot indices, newest = 0).  Nodes
    absent from early snapshots contribute only from snapshots where
    they have edges.
    """
    if num_snapshots < 1:
        raise ModelError(f"num_snapshots must be >= 1, got {num_snapshots}")
    walk_config = walk_config or WalkConfig()
    sgns_config = sgns_config or SgnsConfig()
    rng = make_rng(seed)

    snapshots = snapshot_sequence(graph, num_snapshots)
    dim = sgns_config.dim
    accumulated = np.zeros((graph.num_nodes, dim), dtype=np.float64)
    weights = np.zeros(graph.num_nodes, dtype=np.float64)
    for index, snapshot in enumerate(snapshots):
        age = (num_snapshots - 1) - index
        weight = 0.5 ** (age / recency_half_life)
        corpus = run_static_walks(snapshot, walk_config, seed=rng)
        trainer = BatchedSgnsTrainer(sgns_config,
                                     batch_sentences=batch_sentences)
        model = trainer.train(corpus, graph.num_nodes, seed=rng)
        active = np.flatnonzero(np.diff(snapshot.indptr) > 0)
        accumulated[active] += weight * model.w_in[active]
        weights[active] += weight
    present = weights > 0
    accumulated[present] /= weights[present, None]
    return NodeEmbeddings(accumulated)
