"""Static DeepWalk baseline: temporal-information ablation.

DeepWalk walks the graph ignoring timestamps.  Feeding its corpus into
the identical embedding + classifier stack isolates the value of
temporal validity — the core premise of the paper (modeling dynamic
graphs as static "would inevitably incur information loss and
performance deterioration of downstream predictive tasks", §I).
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import TemporalGraph
from repro.rng import SeedLike, make_rng
from repro.walk.config import WalkConfig
from repro.walk.corpus import PAD, WalkCorpus


def run_static_walks(
    graph: TemporalGraph,
    config: WalkConfig,
    seed: SeedLike = None,
    start_nodes: np.ndarray | None = None,
) -> WalkCorpus:
    """DeepWalk-style uniform walks with no timestamp constraint.

    Same corpus contract as the temporal engine (K walks per start node,
    padded matrix), so it drops into the pipeline unchanged.  Walks only
    terminate at out-degree-0 nodes, so lengths are near-maximal — the
    structural contrast to Fig. 4's temporal power law.
    """
    rng = make_rng(seed)
    if start_nodes is None:
        start_nodes = np.arange(graph.num_nodes, dtype=np.int64)
    k = config.num_walks_per_node
    starts = np.tile(np.asarray(start_nodes, dtype=np.int64), k)
    num_walks = len(starts)
    matrix = np.full((num_walks, config.max_walk_length), PAD, dtype=np.int64)
    matrix[:, 0] = starts
    lengths = np.ones(num_walks, dtype=np.int64)

    active = np.arange(num_walks, dtype=np.int64)
    cur = starts.copy()
    for step in range(1, config.max_walk_length):
        if len(active) == 0:
            break
        lo = graph.indptr[cur[active]]
        hi = graph.indptr[cur[active] + 1]
        counts = hi - lo
        alive = counts > 0
        active = active[alive]
        if len(active) == 0:
            break
        lo = lo[alive]
        counts = counts[alive]
        chosen = lo + rng.integers(0, counts)
        nxt = graph.dst[chosen]
        matrix[active, step] = nxt
        lengths[active] = step + 1
        cur[active] = nxt
    return WalkCorpus(matrix, lengths, start_nodes=starts)
