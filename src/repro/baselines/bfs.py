"""Breadth-first search: the classic graph-traversal contrast workload.

Fig. 3 normalizes every hardware metric to BFS and Fig. 9's surprise is
that the temporal walk executes far more compute than BFS's almost
fp-free traversal.  This is a standard frontier-based BFS over the same
CSR structure, instrumented with the per-level statistics the hardware
models need.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.csr import TemporalGraph
from repro.hwmodel.gpu import GpuKernelModel


@dataclass
class BfsResult:
    """Depths plus traversal statistics."""

    depths: np.ndarray
    edges_scanned: int
    nodes_visited: int
    frontier_sizes: list[int] = field(default_factory=list)

    @property
    def max_depth(self) -> int:
        """Deepest level reached from the source."""
        reached = self.depths[self.depths >= 0]
        return int(reached.max()) if len(reached) else 0


def bfs(graph: TemporalGraph, source: int) -> BfsResult:
    """Frontier-based BFS ignoring timestamps (pure traversal)."""
    depths = np.full(graph.num_nodes, -1, dtype=np.int64)
    depths[source] = 0
    frontier = np.array([source], dtype=np.int64)
    edges_scanned = 0
    frontier_sizes = [1]
    depth = 0
    while len(frontier):
        depth += 1
        # Gather all neighbors of the frontier in one vectorized sweep.
        starts = graph.indptr[frontier]
        ends = graph.indptr[frontier + 1]
        counts = ends - starts
        edges_scanned += int(counts.sum())
        if counts.sum() == 0:
            break
        offsets = np.repeat(starts, counts)
        within = np.arange(int(counts.sum())) - np.repeat(
            np.cumsum(counts) - counts, counts
        )
        neighbors = graph.dst[offsets + within]
        fresh = np.unique(neighbors[depths[neighbors] < 0])
        depths[fresh] = depth
        frontier = fresh
        if len(frontier):
            frontier_sizes.append(len(frontier))
    return BfsResult(
        depths=depths,
        edges_scanned=edges_scanned,
        nodes_visited=int(np.sum(depths >= 0)),
        frontier_sizes=frontier_sizes,
    )


def bfs_gpu_kernel(graph: TemporalGraph, result: BfsResult) -> GpuKernelModel:
    """GPU model of the BFS traversal for the Fig. 3 comparison."""
    degrees = np.diff(graph.indptr)
    mean_deg = degrees.mean() if len(degrees) else 0.0
    cv = float(degrees.std() / mean_deg) if mean_deg > 0 else 0.0
    items = max(1, result.nodes_visited)
    edges_per_node = result.edges_scanned / items
    return GpuKernelModel(
        name="bfs",
        items=items,
        fp_per_item=0.0,                    # the defining contrast
        loads_per_item=2.0 * edges_per_node + 3.0,
        bytes_per_item=8.0 * edges_per_node + 16.0,
        serial_fp_chain=0.0,
        irregular_fraction=0.8,             # neighbor/visited lookups
        divergence_cv=cv,
        working_set_bytes=graph.num_edges * 8.0 + graph.num_nodes * 4.0,
        kernel_launches=max(1, len(result.frontier_sizes)),
        transfer_bytes=graph.num_edges * 8.0,
    )
