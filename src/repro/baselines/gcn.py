"""Graph Convolutional Network inference: the graph-learning contrast.

The paper motivates studying random-walk learning by contrasting it with
GCN (§IV-C, Fig. 3, Reddit dataset).  This is a real 2-layer GCN forward
pass — normalized-adjacency propagation with scipy sparse matrices and
dense feature transforms — plus its GPU kernel description for the
Fig. 3 comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.errors import ModelError
from repro.graph.csr import TemporalGraph
from repro.hwmodel.gpu import GpuKernelModel
from repro.rng import SeedLike, make_rng


def normalized_adjacency(graph: TemporalGraph) -> sp.csr_matrix:
    """Symmetric GCN normalization ``D^-1/2 (A + I) D^-1/2``.

    Multi-edges collapse to weight 1 (GCN is a static-graph method — the
    information loss the paper's introduction criticizes).
    """
    n = graph.num_nodes
    src = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.indptr))
    data = np.ones(len(src))
    adj = sp.coo_matrix((data, (src, graph.dst)), shape=(n, n))
    adj = adj.maximum(adj.T)  # symmetrize, collapse duplicates
    adj = adj + sp.eye(n, format="coo")
    adj = adj.tocsr()
    adj.data[:] = 1.0
    degrees = np.asarray(adj.sum(axis=1)).reshape(-1)
    inv_sqrt = 1.0 / np.sqrt(np.maximum(degrees, 1.0))
    d_mat = sp.diags(inv_sqrt)
    return (d_mat @ adj @ d_mat).tocsr()


@dataclass
class GcnModel:
    """2-layer GCN ``softmax(A_hat relu(A_hat X W0) W1)``."""

    adjacency: sp.csr_matrix
    w0: np.ndarray
    w1: np.ndarray

    @classmethod
    def build(
        cls,
        graph: TemporalGraph,
        feature_dim: int,
        hidden_dim: int,
        num_classes: int,
        seed: SeedLike = None,
    ) -> "GcnModel":
        """Construct a GCN with Xavier-initialized weights."""
        if min(feature_dim, hidden_dim, num_classes) < 1:
            raise ModelError("GCN dimensions must be >= 1")
        rng = make_rng(seed)
        scale0 = np.sqrt(2.0 / (feature_dim + hidden_dim))
        scale1 = np.sqrt(2.0 / (hidden_dim + num_classes))
        return cls(
            adjacency=normalized_adjacency(graph),
            w0=rng.normal(0.0, scale0, size=(feature_dim, hidden_dim)),
            w1=rng.normal(0.0, scale1, size=(hidden_dim, num_classes)),
        )

    @property
    def feature_dim(self) -> int:
        """Input feature dimensionality."""
        return self.w0.shape[0]

    def forward(self, features: np.ndarray) -> np.ndarray:
        """Inference pass; returns class probabilities per node."""
        if features.shape != (self.adjacency.shape[0], self.feature_dim):
            raise ModelError(
                f"features must be ({self.adjacency.shape[0]}, "
                f"{self.feature_dim}), got {features.shape}"
            )
        hidden = self.adjacency @ (features @ self.w0)
        hidden = np.maximum(hidden, 0.0)
        logits = self.adjacency @ (hidden @ self.w1)
        shifted = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=1, keepdims=True)

    def flops(self) -> float:
        """Total floating-point operations of one forward pass."""
        n = self.adjacency.shape[0]
        nnz = self.adjacency.nnz
        dense = 2.0 * n * self.w0.size + 2.0 * n * self.w1.size
        sparse = 2.0 * nnz * (self.w0.shape[1] + self.w1.shape[1])
        return dense + sparse


class TrainableGcn:
    """2-layer GCN with explicit gradients for node classification.

    The paper contrasts random-walk learning against GCN (§IV-C): GCN
    needs per-node feature vectors and collapses temporal multi-edges
    into a static adjacency.  This trainable version makes the
    comparison executable: identity-free inputs (degree + random
    features, since Table II graphs are feature-less — exactly the
    handicap §IV-C describes), full-batch gradient descent on the
    standard ``softmax(A relu(A X W0) W1)`` objective.
    """

    def __init__(
        self,
        graph: TemporalGraph,
        feature_dim: int,
        hidden_dim: int,
        num_classes: int,
        seed: SeedLike = None,
    ) -> None:
        self.model = GcnModel.build(graph, feature_dim, hidden_dim,
                                    num_classes, seed=seed)
        rng = make_rng(seed)
        # Feature-less graphs: degree scalar + fixed random features (the
        # standard fallback the paper's comparison implies).
        n = graph.num_nodes
        degrees = np.diff(graph.indptr).astype(np.float64)
        degree_feature = degrees / max(1.0, degrees.max())
        random_features = rng.normal(0.0, 1.0, size=(n, feature_dim - 1))
        self.features = np.concatenate(
            [degree_feature[:, None], random_features], axis=1
        )

    def _forward(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        adj = self.model.adjacency
        pre_hidden = adj @ (self.features @ self.model.w0)
        hidden = np.maximum(pre_hidden, 0.0)
        logits = adj @ (hidden @ self.model.w1)
        return pre_hidden, hidden, logits

    def predict(self) -> np.ndarray:
        """Predicted class per node."""
        return np.argmax(self._forward()[2], axis=1)

    def fit(
        self,
        labels: np.ndarray,
        train_nodes: np.ndarray,
        epochs: int = 100,
        lr: float = 0.05,
        weight_decay: float = 5e-4,
    ) -> list[float]:
        """Full-batch training on ``train_nodes``; returns the loss trace.

        Gradients are the exact analytic ones (the adjacency is
        symmetric, so ``A^T = A`` in the backward pass).
        """
        labels = np.asarray(labels, dtype=np.int64)
        adj = self.model.adjacency
        losses: list[float] = []
        n_train = len(train_nodes)
        for _ in range(epochs):
            pre_hidden, hidden, logits = self._forward()
            shifted = logits - logits.max(axis=1, keepdims=True)
            exp = np.exp(shifted)
            softmax = exp / exp.sum(axis=1, keepdims=True)
            picked = softmax[train_nodes, labels[train_nodes]]
            losses.append(float(-np.log(np.maximum(picked, 1e-12)).mean()))

            grad_logits = np.zeros_like(logits)
            grad_logits[train_nodes] = softmax[train_nodes]
            grad_logits[train_nodes, labels[train_nodes]] -= 1.0
            grad_logits /= n_train

            # logits = A (hidden W1)
            grad_hw1 = adj.T @ grad_logits
            grad_w1 = hidden.T @ grad_hw1
            grad_hidden = grad_hw1 @ self.model.w1.T
            grad_pre = grad_hidden * (pre_hidden > 0)
            # pre_hidden = A (X W0)
            grad_xw0 = adj.T @ grad_pre
            grad_w0 = self.features.T @ grad_xw0

            self.model.w0 -= lr * (grad_w0 + weight_decay * self.model.w0)
            self.model.w1 -= lr * (grad_w1 + weight_decay * self.model.w1)
        return losses

    def accuracy(self, labels: np.ndarray, nodes: np.ndarray) -> float:
        """Accuracy over ``nodes``."""
        predictions = self.predict()
        return float(np.mean(predictions[nodes] == labels[nodes]))


def gcn_gpu_kernel(model: GcnModel) -> GpuKernelModel:
    """GPU model of GCN inference for the Fig. 3 comparison."""
    n = model.adjacency.shape[0]
    nnz = model.adjacency.nnz
    degrees = np.diff(model.adjacency.indptr)
    mean_deg = degrees.mean() if n else 0.0
    cv = float(degrees.std() / mean_deg) if mean_deg > 0 else 0.0
    items = float(max(1, n))
    feature_bytes = n * model.feature_dim * 4.0
    return GpuKernelModel(
        name="gcn",
        items=items,
        fp_per_item=model.flops() / items,
        loads_per_item=(nnz * 2.0 + n * model.feature_dim) / items,
        bytes_per_item=(nnz * 12.0 + feature_bytes * 2.0) / items,
        serial_fp_chain=1.0,
        irregular_fraction=0.4,      # SpMM gathers, dense GEMM streams
        divergence_cv=cv,
        working_set_bytes=nnz * 12.0 + feature_bytes,
        kernel_launches=4,
        transfer_bytes=feature_bytes + nnz * 12.0,
    )
