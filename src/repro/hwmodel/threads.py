"""Thread-scaling simulator (Fig. 10).

The paper parallelizes the walk kernel's vertex loop with dynamically
scheduled (work-stealing) OpenMP threads because per-vertex work —
dependent on out-degree and timestamp distribution — is heavily
imbalanced; naive static partitioning scales poorly.  This module
simulates both policies as a deterministic greedy scheduler over the
*measured* per-vertex work array the walk engine records
(``WalkStats.work_per_start_node``), plus per-thread and per-chunk
overheads that reproduce the paper's observed scaling knee
(thread-management cost dominating past ~64 threads).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError


@dataclass(frozen=True)
class SchedulerCosts:
    """Overhead parameters (work units, relative to one unit of task work).

    ``bandwidth_speedup_cap`` is a roofline ceiling: memory-bound kernels
    stop scaling once the cores saturate DRAM bandwidth regardless of
    thread count — the effect behind the paper's observation that more
    than 64 threads does not help (§VII-B).  ``None`` disables it.
    """

    per_thread_startup: float = 500.0
    per_chunk_dispatch: float = 3.0
    per_steal: float = 12.0
    bandwidth_speedup_cap: float | None = 48.0


@dataclass
class ScheduleResult:
    """Outcome of one simulated parallel execution."""

    policy: str
    num_threads: int
    makespan: float
    serial_work: float
    per_thread_work: np.ndarray

    @property
    def speedup(self) -> float:
        """Serial work divided by makespan."""
        if self.makespan == 0:
            return 0.0
        return self.serial_work / self.makespan

    @property
    def load_imbalance(self) -> float:
        """max/mean busy time across threads (1.0 = perfectly balanced)."""
        mean = self.per_thread_work.mean()
        if mean == 0:
            return 1.0
        return float(self.per_thread_work.max() / mean)


def simulate_schedule(
    work: np.ndarray,
    num_threads: int,
    policy: str = "dynamic",
    chunk: int = 64,
    costs: SchedulerCosts = SchedulerCosts(),
) -> ScheduleResult:
    """Simulate scheduling ``work`` items onto ``num_threads`` threads.

    ``static``: the item range is split into ``num_threads`` contiguous
    blocks up front (OpenMP ``schedule(static)``); makespan is the
    heaviest block.  ``dynamic``: threads repeatedly grab the next
    ``chunk`` items from a shared queue (OpenMP ``schedule(dynamic)`` —
    work stealing in the paper's terms), paying a dispatch overhead per
    grab; simulated exactly with a min-heap of thread completion times.
    """
    work = np.asarray(work, dtype=np.float64)
    if num_threads < 1:
        raise ModelError(f"num_threads must be >= 1, got {num_threads}")
    if policy not in ("static", "dynamic"):
        raise ModelError(f"policy must be 'static' or 'dynamic', got {policy!r}")
    serial = float(work.sum())
    startup = costs.per_thread_startup * np.log2(num_threads + 1)

    floor = 0.0
    if costs.bandwidth_speedup_cap is not None:
        floor = serial / costs.bandwidth_speedup_cap

    if policy == "static" or num_threads == 1:
        bounds = np.linspace(0, len(work), num_threads + 1).astype(int)
        per_thread = np.array(
            [work[bounds[i]: bounds[i + 1]].sum() for i in range(num_threads)]
        )
        makespan = max(float(per_thread.max()), floor) + startup
        return ScheduleResult(policy, num_threads, makespan, serial, per_thread)

    chunk_sums = [
        float(work[base: base + chunk].sum()) + costs.per_chunk_dispatch
        for base in range(0, len(work), chunk)
    ]
    # Greedy list scheduling with a completion-time heap: each idle thread
    # takes the next chunk in queue order, exactly like a dynamic OpenMP
    # loop with deterministic tie-breaking.
    heap = [(0.0, t) for t in range(num_threads)]
    heapq.heapify(heap)
    busy = np.zeros(num_threads, dtype=np.float64)
    for chunk_work in chunk_sums:
        finish, thread = heapq.heappop(heap)
        new_finish = finish + chunk_work + costs.per_steal / num_threads
        busy[thread] += chunk_work
        heapq.heappush(heap, (new_finish, thread))
    makespan = max(max(f for f, _ in heap), floor) + startup
    return ScheduleResult(policy, num_threads, makespan, serial, busy)


def scaling_curve(
    work: np.ndarray,
    thread_counts: list[int],
    policy: str = "dynamic",
    chunk: int = 64,
    costs: SchedulerCosts = SchedulerCosts(),
) -> dict[int, float]:
    """Speedup-vs-threads curve normalized to the single-thread run."""
    base = simulate_schedule(work, 1, policy="static", costs=costs).makespan
    curve: dict[int, float] = {}
    for t in thread_counts:
        result = simulate_schedule(work, t, policy=policy, chunk=chunk, costs=costs)
        curve[t] = base / result.makespan
    return curve
