"""Thread-scaling simulator (Fig. 10).

The paper parallelizes the walk kernel's vertex loop with dynamically
scheduled (work-stealing) OpenMP threads because per-vertex work —
dependent on out-degree and timestamp distribution — is heavily
imbalanced; naive static partitioning scales poorly.  This module
simulates both policies as a deterministic greedy scheduler over the
*measured* per-vertex work array the walk engine records
(``WalkStats.work_per_start_node``), plus per-thread and per-chunk
overheads that reproduce the paper's observed scaling knee
(thread-management cost dominating past ~64 threads).

Since :mod:`repro.parallel` added real multiprocess execution, the
analytic model is no longer the only source of scaling numbers:
``benchmarks/bench_parallel_scaling.py`` writes a *measured* curve to
``bench_results/parallel_scaling.json``, and :func:`load_measured_curve`
/ :func:`compare_to_measured` line the model up against it.
"""

from __future__ import annotations

import heapq
import json
import os
from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError


@dataclass(frozen=True)
class SchedulerCosts:
    """Overhead parameters (work units, relative to one unit of task work).

    ``bandwidth_speedup_cap`` is a roofline ceiling: memory-bound kernels
    stop scaling once the cores saturate DRAM bandwidth regardless of
    thread count — the effect behind the paper's observation that more
    than 64 threads does not help (§VII-B).  ``None`` disables it.
    """

    per_thread_startup: float = 500.0
    per_chunk_dispatch: float = 3.0
    per_steal: float = 12.0
    bandwidth_speedup_cap: float | None = 48.0


@dataclass
class ScheduleResult:
    """Outcome of one simulated parallel execution."""

    policy: str
    num_threads: int
    makespan: float
    serial_work: float
    per_thread_work: np.ndarray

    @property
    def speedup(self) -> float:
        """Serial work divided by makespan."""
        if self.makespan == 0:
            return 0.0
        return self.serial_work / self.makespan

    @property
    def load_imbalance(self) -> float:
        """max/mean busy time across threads (1.0 = perfectly balanced)."""
        mean = self.per_thread_work.mean()
        if mean == 0:
            return 1.0
        return float(self.per_thread_work.max() / mean)


def simulate_schedule(
    work: np.ndarray,
    num_threads: int,
    policy: str = "dynamic",
    chunk: int = 64,
    costs: SchedulerCosts = SchedulerCosts(),
) -> ScheduleResult:
    """Simulate scheduling ``work`` items onto ``num_threads`` threads.

    ``static``: the item range is split into ``num_threads`` contiguous
    blocks up front (OpenMP ``schedule(static)``); makespan is the
    heaviest block.  ``dynamic``: threads repeatedly grab the next
    ``chunk`` items from a shared queue (OpenMP ``schedule(dynamic)`` —
    work stealing in the paper's terms), paying a dispatch overhead per
    grab; simulated exactly with a min-heap of thread completion times.
    """
    work = np.asarray(work, dtype=np.float64)
    if num_threads < 1:
        raise ModelError(f"num_threads must be >= 1, got {num_threads}")
    if policy not in ("static", "dynamic"):
        raise ModelError(f"policy must be 'static' or 'dynamic', got {policy!r}")
    serial = float(work.sum())
    startup = costs.per_thread_startup * np.log2(num_threads + 1)

    floor = 0.0
    if costs.bandwidth_speedup_cap is not None:
        floor = serial / costs.bandwidth_speedup_cap

    if policy == "static" or num_threads == 1:
        bounds = np.linspace(0, len(work), num_threads + 1).astype(int)
        per_thread = np.array(
            [work[bounds[i]: bounds[i + 1]].sum() for i in range(num_threads)]
        )
        makespan = max(float(per_thread.max()), floor) + startup
        return ScheduleResult(policy, num_threads, makespan, serial, per_thread)

    chunk_sums = [
        float(work[base: base + chunk].sum()) + costs.per_chunk_dispatch
        for base in range(0, len(work), chunk)
    ]
    # Greedy list scheduling with a completion-time heap: each idle thread
    # takes the next chunk in queue order, exactly like a dynamic OpenMP
    # loop with deterministic tie-breaking.
    heap = [(0.0, t) for t in range(num_threads)]
    heapq.heapify(heap)
    busy = np.zeros(num_threads, dtype=np.float64)
    for chunk_work in chunk_sums:
        finish, thread = heapq.heappop(heap)
        new_finish = finish + chunk_work + costs.per_steal / num_threads
        busy[thread] += chunk_work
        heapq.heappush(heap, (new_finish, thread))
    makespan = max(max(f for f, _ in heap), floor) + startup
    return ScheduleResult(policy, num_threads, makespan, serial, busy)


def scaling_curve(
    work: np.ndarray,
    thread_counts: list[int],
    policy: str = "dynamic",
    chunk: int = 64,
    costs: SchedulerCosts = SchedulerCosts(),
) -> dict[int, float]:
    """Speedup-vs-threads curve normalized to the single-thread run."""
    base = simulate_schedule(work, 1, policy="static", costs=costs).makespan
    curve: dict[int, float] = {}
    for t in thread_counts:
        result = simulate_schedule(work, t, policy=policy, chunk=chunk, costs=costs)
        curve[t] = base / result.makespan
    return curve


# ---------------------------------------------------------------------------
# Measured-vs-modeled validation (repro.parallel closes the loop)
# ---------------------------------------------------------------------------


def load_measured_curve(
    path: str | os.PathLike, key: str = "walk_speedup"
) -> dict[int, float]:
    """Load a measured speedup curve from a bench-results JSON record.

    ``benchmarks/bench_parallel_scaling.py`` writes
    ``bench_results/parallel_scaling.json`` with speedup-vs-workers
    mappings under ``walk_speedup`` and ``w2v_speedup``.  Returns
    ``{workers: speedup}`` with integer keys.
    """
    with open(path, "r", encoding="utf-8") as handle:
        record = json.load(handle)
    if key not in record:
        raise ModelError(
            f"{os.fspath(path)}: no {key!r} series; found "
            f"{sorted(record)}"
        )
    return {int(k): float(v) for k, v in record[key].items()}


def compare_to_measured(
    measured: dict[int, float],
    work: np.ndarray,
    policy: str = "dynamic",
    chunk: int = 64,
    costs: SchedulerCosts = SchedulerCosts(),
) -> list[dict[str, float]]:
    """Model-vs-measured rows for every measured worker count.

    ``measured`` maps worker count to measured speedup (wall-clock,
    from the multiprocess execution layer); the model replays the same
    per-start-node ``work`` array through :func:`simulate_schedule`.
    Each row carries ``workers``, ``measured``, ``modeled``, and
    ``ratio`` (modeled / measured; 1.0 = the analytic model predicts
    the measured scaling exactly).  Process workers pay fork/IPC
    overheads the thread model does not, so expect ratios above 1 at
    high worker counts on small inputs.
    """
    if not measured:
        raise ModelError("measured curve is empty")
    curve = scaling_curve(
        work, sorted(measured), policy=policy, chunk=chunk, costs=costs
    )
    rows = []
    for workers in sorted(measured):
        observed = float(measured[workers])
        modeled = float(curve[workers])
        rows.append({
            "workers": workers,
            "measured": observed,
            "modeled": modeled,
            "ratio": modeled / observed if observed > 0 else float("inf"),
        })
    return rows


def model_measured_gap(rows: list[dict[str, float]]) -> float:
    """Mean absolute relative error of the model over comparison rows.

    ``0.0`` means the analytic scheduler predicts every measured point
    exactly; ``0.5`` means it is off by 50% on average.
    """
    if not rows:
        raise ModelError("no comparison rows")
    errors = [
        abs(r["modeled"] - r["measured"]) / r["measured"]
        for r in rows
        if r["measured"] > 0
    ]
    if not errors:
        raise ModelError("no rows with positive measured speedup")
    return float(np.mean(errors))
