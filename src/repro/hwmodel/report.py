"""One-call hardware characterization of a pipeline run.

Ties the hardware models together: given the measured statistics a
:class:`repro.tasks.PipelineResult` carries (walk work counters, trainer
pair counts) plus the graph, produce everything the paper's §VII reports
for the workload — per-kernel instruction mixes (Fig. 9), GPU kernel
reports with stall breakdowns (Fig. 11), roofline placement, and the
thread-scaling curve (Fig. 10) — as one structured object.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.embedding.trainer import SgnsConfig, TrainerStats
from repro.graph.csr import TemporalGraph
from repro.hwmodel.gpu import (
    GpuConfig,
    GpuKernelReport,
    classifier_kernel,
    walk_kernel,
    word2vec_kernel,
)
from repro.hwmodel.profiler import (
    KernelProfile,
    profile_classifier,
    profile_random_walk,
    profile_word2vec,
)
from repro.hwmodel.roofline import (
    Roofline,
    RooflinePoint,
    pipeline_roofline_points,
)
from repro.hwmodel.threads import scaling_curve
from repro.walk.engine import WalkStats

DEFAULT_THREADS = (1, 2, 4, 8, 16, 32, 64, 128)


@dataclass
class PipelineCharacterization:
    """All §VII artifacts for one pipeline run."""

    instruction_mixes: dict[str, KernelProfile]
    gpu_reports: dict[str, GpuKernelReport]
    roofline: Roofline
    roofline_points: list[RooflinePoint]
    walk_scaling: dict[int, float] = field(default_factory=dict)

    def summary_rows(self) -> list[dict[str, object]]:
        """One row per kernel: mix shares + dominant stall + SM util."""
        rows = []
        intensity = {p.name: p.operational_intensity
                     for p in self.roofline_points}
        for name, profile in self.instruction_mixes.items():
            report = self.gpu_reports.get(name)
            fractions = profile.fractions()
            rows.append({
                "kernel": name,
                "compute": round(fractions["compute"], 3),
                "memory": round(fractions["memory"], 3),
                "dominant stall": (report.stalls.dominant()
                                   if report else "-"),
                "sm util": (round(report.sm_utilization, 4)
                            if report else "-"),
                "flops/byte": round(intensity.get(name, float("nan")), 3),
            })
        return rows


def characterize_pipeline(
    walk_stats: WalkStats,
    trainer_stats: TrainerStats,
    sgns_config: SgnsConfig,
    graph: TemporalGraph,
    num_train_samples: int,
    num_test_samples: int,
    classifier_dims: list[tuple[int, int]] | None = None,
    batch_size: int = 128,
    batch_sentences: int = 1024,
    gpu_config: GpuConfig | None = None,
    threads: tuple[int, ...] = DEFAULT_THREADS,
) -> PipelineCharacterization:
    """Build the full §VII characterization from measured statistics.

    ``num_train_samples`` should be the total examples the classifier
    processed (epochs x (positives + negatives)); ``classifier_dims``
    defaults to the link-prediction FNN at the recommended operating
    point (2d -> 32 -> 1).
    """
    gpu_config = gpu_config or GpuConfig()
    if classifier_dims is None:
        classifier_dims = [(2 * sgns_config.dim, 32), (32, 1)]

    mixes = {
        "rwalk": profile_random_walk(walk_stats),
        "word2vec": profile_word2vec(trainer_stats, sgns_config),
        "train": profile_classifier("train", classifier_dims,
                                    num_train_samples, batch_size, True),
        "test": profile_classifier("test", classifier_dims,
                                   num_test_samples,
                                   max(1, num_test_samples), False),
    }
    gpu_reports = {
        "rwalk": walk_kernel(walk_stats, graph).report(gpu_config),
        "word2vec": word2vec_kernel(
            trainer_stats, sgns_config, graph.num_nodes, batch_sentences
        ).report(gpu_config),
        "train": classifier_kernel(
            "train", classifier_dims, batch_size, num_train_samples, True
        ).report(gpu_config),
        "test": classifier_kernel(
            "test", classifier_dims, max(1, num_test_samples),
            num_test_samples, False
        ).report(gpu_config),
    }
    points = pipeline_roofline_points(
        walk_stats, trainer_stats, sgns_config, classifier_dims, batch_size
    )
    work = walk_stats.work_per_start_node.astype(np.float64) + 1.0
    scaling = scaling_curve(work, list(threads)) if len(work) else {}
    return PipelineCharacterization(
        instruction_mixes=mixes,
        gpu_reports=gpu_reports,
        roofline=Roofline.from_gpu(gpu_config),
        roofline_points=points,
        walk_scaling=scaling,
    )
