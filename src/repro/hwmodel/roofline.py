"""Roofline analysis: operational intensity vs attainable throughput.

A standard companion to the paper's §VII characterization: each kernel's
operational intensity (flops per byte of memory traffic) against the
machine's roofline (min of peak compute and bandwidth x intensity)
explains *why* the stall profiles of Fig. 11 look the way they do —
the walk and word2vec kernels sit far left of the ridge point
(bandwidth-bound), dense GEMM far right (compute-bound), and the tiny
classifier GEMMs below the roof entirely (overhead-bound).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelError
from repro.hwmodel.gpu import GpuConfig


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel's position against the roofline."""

    name: str
    flops: float
    bytes_moved: float
    achieved_flops_per_second: float | None = None

    @property
    def operational_intensity(self) -> float:
        """Flops per byte of memory traffic."""
        if self.bytes_moved <= 0:
            raise ModelError(f"kernel {self.name!r} moves no bytes")
        return self.flops / self.bytes_moved


@dataclass(frozen=True)
class Roofline:
    """Machine roofline: peak compute and memory bandwidth ceilings."""

    peak_flops_per_second: float
    bandwidth_bytes_per_second: float

    @classmethod
    def from_gpu(cls, config: GpuConfig = GpuConfig()) -> "Roofline":
        """Roofline ceilings from a GPU configuration."""
        return cls(
            peak_flops_per_second=config.fp_tflops * 1e12,
            bandwidth_bytes_per_second=config.dram_bw_gbs * 1e9,
        )

    @property
    def ridge_intensity(self) -> float:
        """Intensity where the bandwidth roof meets the compute roof."""
        return self.peak_flops_per_second / self.bandwidth_bytes_per_second

    def attainable(self, intensity: float) -> float:
        """Attainable flops/s at ``intensity`` (the roof itself)."""
        if intensity <= 0:
            raise ModelError(f"intensity must be positive, got {intensity}")
        return min(
            self.peak_flops_per_second,
            self.bandwidth_bytes_per_second * intensity,
        )

    def classify(self, point: RooflinePoint) -> str:
        """``memory-bound`` / ``compute-bound`` by ridge comparison."""
        if point.operational_intensity < self.ridge_intensity:
            return "memory-bound"
        return "compute-bound"

    def efficiency(self, point: RooflinePoint) -> float | None:
        """Achieved / attainable, when achieved throughput is known."""
        if point.achieved_flops_per_second is None:
            return None
        roof = self.attainable(point.operational_intensity)
        return point.achieved_flops_per_second / roof


def pipeline_roofline_points(
    walk_stats, w2v_stats, sgns_config, classifier_dims, batch_size: int
) -> list[RooflinePoint]:
    """Roofline points for the four pipeline kernels from measured stats.

    Flop and byte counts follow the same accounting as the instruction
    profiler: Eq. 1 work per scanned candidate for the walk, SGNS math
    per pair for word2vec, GEMM volume for the classifier.
    """
    d = sgns_config.dim
    negatives = sgns_config.negatives
    pairs = max(1, w2v_stats.pairs_trained)
    points = [
        RooflinePoint(
            name="rwalk",
            flops=walk_stats.candidates_scanned * 5.0
            + walk_stats.total_steps * 4.0,
            bytes_moved=walk_stats.candidates_scanned * 16.0
            + walk_stats.total_steps * 32.0,
        ),
        RooflinePoint(
            name="word2vec",
            flops=pairs * (1 + negatives) * 6.0 * d,
            bytes_moved=pairs * (2 + negatives) * d * 8.0,
        ),
    ]
    for phase, gemms in (("train", 3), ("test", 1)):
        flops = sum(2.0 * batch_size * i * o * gemms
                    for i, o in classifier_dims)
        bytes_moved = sum(
            4.0 * (batch_size * i + i * o + batch_size * o) * gemms
            for i, o in classifier_dims
        )
        points.append(RooflinePoint(name=phase, flops=flops,
                                    bytes_moved=bytes_moved))
    return points
