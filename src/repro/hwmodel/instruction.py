"""Dynamic instruction taxonomy (Fig. 9's categories).

The paper's MICA-based breakdown uses: memory, branch, compute
(arithmetic + floating point), and "others" (stack, shifts, string,
SIMD).  :class:`InstructionMix` is an additive counter over those
categories with the fraction views the figure plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field

CATEGORIES = ("memory", "branch", "compute_int", "compute_fp", "other")


@dataclass
class InstructionMix:
    """Additive dynamic-instruction counter."""

    memory: float = 0.0
    branch: float = 0.0
    compute_int: float = 0.0
    compute_fp: float = 0.0
    other: float = 0.0

    @property
    def compute(self) -> float:
        """Combined arithmetic + floating point (Fig. 9's 'compute')."""
        return self.compute_int + self.compute_fp

    @property
    def total(self) -> float:
        """Sum over all categories."""
        return self.memory + self.branch + self.compute + self.other

    def fractions(self) -> dict[str, float]:
        """Category -> fraction of total, using Fig. 9's grouping."""
        total = self.total
        if total == 0:
            return {"memory": 0.0, "branch": 0.0, "compute": 0.0, "other": 0.0}
        return {
            "memory": self.memory / total,
            "branch": self.branch / total,
            "compute": self.compute / total,
            "other": self.other / total,
        }

    def __add__(self, rhs: "InstructionMix") -> "InstructionMix":
        return InstructionMix(
            memory=self.memory + rhs.memory,
            branch=self.branch + rhs.branch,
            compute_int=self.compute_int + rhs.compute_int,
            compute_fp=self.compute_fp + rhs.compute_fp,
            other=self.other + rhs.other,
        )

    def scaled(self, factor: float) -> "InstructionMix":
        """Return a copy with every category multiplied by ``factor``."""
        return InstructionMix(
            memory=self.memory * factor,
            branch=self.branch * factor,
            compute_int=self.compute_int * factor,
            compute_fp=self.compute_fp * factor,
            other=self.other * factor,
        )

    def add(self, category: str, count: float) -> None:
        """Accumulate ``count`` events into ``category``."""
        if category not in CATEGORIES:
            raise ValueError(
                f"unknown category {category!r}; options: {CATEGORIES}"
            )
        setattr(self, category, getattr(self, category) + count)
