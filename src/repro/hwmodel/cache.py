"""Set-associative LRU cache simulator.

Used for the L2-hit-rate comparison of Fig. 3 and for studying the
word2vec cache-line-padding trade-off of §V-B: traces derived from the
*actual* kernel access patterns (walk vertex sequences, embedding row
touches, GEMM streaming) are replayed through a two-level hierarchy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level."""

    size_bytes: int
    line_bytes: int = 64
    ways: int = 8

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.line_bytes <= 0 or self.ways <= 0:
            raise ModelError("cache geometry values must be positive")
        if self.size_bytes % (self.line_bytes * self.ways):
            raise ModelError(
                "size_bytes must be a multiple of line_bytes * ways"
            )

    @property
    def num_sets(self) -> int:
        """Number of cache sets implied by the geometry."""
        return self.size_bytes // (self.line_bytes * self.ways)


class CacheSim:
    """One set-associative LRU cache level.

    Vectorized over address arrays: :meth:`access_many` replays a trace
    and returns the hit mask.  LRU state is a per-set timestamp array.
    """

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        sets, ways = config.num_sets, config.ways
        self._tags = np.full((sets, ways), -1, dtype=np.int64)
        self._stamp = np.zeros((sets, ways), dtype=np.int64)
        self._clock = 0
        self.hits = 0
        self.misses = 0

    def reset_stats(self) -> None:
        """Zero the hit/miss counters (state is kept)."""
        self.hits = 0
        self.misses = 0

    @property
    def accesses(self) -> int:
        """Total accesses since the last reset."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits / accesses (0 when no accesses)."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    # ------------------------------------------------------------------
    def access(self, address: int) -> bool:
        """Access one byte address; returns True on hit."""
        cfg = self.config
        line = address // cfg.line_bytes
        index = line % cfg.num_sets
        tag = line // cfg.num_sets
        self._clock += 1
        row_tags = self._tags[index]
        hit_ways = np.flatnonzero(row_tags == tag)
        if len(hit_ways):
            way = hit_ways[0]
            self._stamp[index, way] = self._clock
            self.hits += 1
            return True
        victim = int(np.argmin(self._stamp[index]))
        self._tags[index, victim] = tag
        self._stamp[index, victim] = self._clock
        self.misses += 1
        return False

    def access_many(self, addresses: np.ndarray) -> np.ndarray:
        """Replay a trace; returns a boolean hit mask per access."""
        addresses = np.asarray(addresses, dtype=np.int64)
        hits = np.empty(len(addresses), dtype=bool)
        for i, addr in enumerate(addresses):
            hits[i] = self.access(int(addr))
        return hits


class CacheHierarchy:
    """Two-level inclusive-ish hierarchy: L1 miss probes L2.

    ``access_many`` returns per-access level outcomes; aggregate hit
    rates are on the member caches.
    """

    def __init__(self, l1: CacheConfig, l2: CacheConfig) -> None:
        self.l1 = CacheSim(l1)
        self.l2 = CacheSim(l2)

    def access_many(self, addresses: np.ndarray) -> dict[str, float]:
        """Replay a trace; returns L1/L2 hit rates and DRAM access count."""
        addresses = np.asarray(addresses, dtype=np.int64)
        dram = 0
        for addr in addresses:
            if not self.l1.access(int(addr)):
                if not self.l2.access(int(addr)):
                    dram += 1
        return {
            "l1_hit_rate": self.l1.hit_rate,
            "l2_hit_rate": self.l2.hit_rate,
            "dram_accesses": float(dram),
        }


# ---------------------------------------------------------------------------
# Trace builders from real kernel behaviour
# ---------------------------------------------------------------------------


def walk_trace(corpus, graph, element_bytes: int = 16, limit: int = 200_000
               ) -> np.ndarray:
    """Address trace of the walk kernel's graph accesses.

    For each walk step the kernel reads the current node's CSR offsets
    and scans its adjacency slice; addresses are laid out as the real CSR
    would be (AoS edge elements of ``element_bytes``).  Truncated to
    ``limit`` accesses to keep simulation tractable.
    """
    addresses: list[int] = []
    indptr_base = 0
    edges_base = (graph.num_nodes + 1) * 8
    for i in range(corpus.num_walks):
        walk = corpus.walk(i)
        for node in walk[:-1]:
            addresses.append(indptr_base + int(node) * 8)
            lo, hi = int(graph.indptr[node]), int(graph.indptr[node + 1])
            for e in range(lo, min(hi, lo + 64)):
                addresses.append(edges_base + e * element_bytes)
            if len(addresses) >= limit:
                return np.asarray(addresses[:limit], dtype=np.int64)
    return np.asarray(addresses, dtype=np.int64)


def embedding_trace(
    corpus,
    dim: int,
    pad_to_line: bool,
    line_bytes: int = 64,
    element_bytes: int = 4,
    limit: int = 200_000,
) -> np.ndarray:
    """Address trace of word2vec's embedding-row touches.

    ``pad_to_line`` reproduces the prior GPU implementation's cache-line
    padding (§V-B): each row starts on its own line, so a d=8 float row
    wastes half the line — the utilization problem the paper's "No-pad"
    optimization removes.
    """
    row_bytes = dim * element_bytes
    stride = (
        -(-row_bytes // line_bytes) * line_bytes if pad_to_line else row_bytes
    )
    addresses: list[int] = []
    for i in range(corpus.num_walks):
        walk = corpus.walk(i)
        for node in walk:
            base = int(node) * stride
            for offset in range(0, row_bytes, line_bytes):
                addresses.append(base + offset)
            if len(addresses) >= limit:
                return np.asarray(addresses[:limit], dtype=np.int64)
    return np.asarray(addresses, dtype=np.int64)


def streaming_trace(
    total_bytes: int, element_bytes: int = 8, passes: int = 2,
    limit: int = 200_000,
) -> np.ndarray:
    """Sequential multi-pass element trace (dense GEMM-style streaming).

    Every element of the buffer is read in order, so consecutive
    accesses share cache lines — the spatial-reuse pattern that makes
    dense kernels cache-friendly even when the buffer exceeds capacity.
    """
    elements = max(1, total_bytes // element_bytes)
    one_pass = np.arange(elements, dtype=np.int64) * element_bytes
    trace = np.tile(one_pass, passes)
    return trace[:limit]


def bfs_trace(graph, bfs_result, limit: int = 200_000) -> np.ndarray:
    """Address trace of a frontier BFS over the CSR graph.

    Per visited node: its indptr entry, its adjacency slice (sequential
    8-byte neighbor ids), and one visited-flag probe per scanned edge —
    the classic mostly-streaming-with-random-probes traversal pattern.
    ``bfs_result`` supplies the visit order via depths.
    """
    depths = bfs_result.depths
    order = np.argsort(np.where(depths < 0, np.iinfo(np.int64).max, depths),
                       kind="stable")
    indptr_base = 0
    edges_base = (graph.num_nodes + 1) * 8
    flags_base = edges_base + graph.num_edges * 8
    addresses: list[int] = []
    for node in order:
        if depths[node] < 0:
            break
        addresses.append(indptr_base + int(node) * 8)
        lo, hi = int(graph.indptr[node]), int(graph.indptr[node + 1])
        for e in range(lo, hi):
            addresses.append(edges_base + e * 8)
            addresses.append(flags_base + int(graph.dst[e]) * 4)
            if len(addresses) >= limit:
                return np.asarray(addresses[:limit], dtype=np.int64)
    return np.asarray(addresses, dtype=np.int64)
