"""Hardware characterization substrate.

The paper's hardware study uses a Pin tool (instruction mixes, Fig. 9),
Nsight (GPU stalls, Fig. 11; utilization metrics, Fig. 3), and a 128-core
server (thread scaling, Fig. 10).  None of those exist in a pure-Python
environment, so this package provides analytic-but-workload-driven
models: each model consumes *measured* statistics of the actual executed
kernels (real degrees, real walk lengths, real pair counts, real GEMM
dimensions) and converts them into hardware events with explicit,
documented cost tables.  The claims being reproduced are distributional
("compute ≈ memory even in the walk kernel", "each kernel's dominant
stall differs"), and those shapes emerge from the workload statistics,
not from hard-coded answers.

- :mod:`repro.hwmodel.instruction` / :mod:`repro.hwmodel.profiler` —
  dynamic instruction taxonomy and per-kernel mix derivation (Fig. 9);
- :mod:`repro.hwmodel.cache` — set-associative LRU cache hierarchy fed
  by address traces of the real kernels (L2 hit rates, Fig. 3);
- :mod:`repro.hwmodel.gpu` — GPU execution/stall model (Fig. 3, 5, 6,
  11; Table III GPU columns);
- :mod:`repro.hwmodel.threads` — discrete-event static vs work-stealing
  scheduling simulator over measured per-vertex work (Fig. 10).
"""

from repro.hwmodel.instruction import InstructionMix
from repro.hwmodel.profiler import (
    KernelProfile,
    profile_classifier,
    profile_random_walk,
    profile_word2vec,
)
from repro.hwmodel.cache import CacheConfig, CacheHierarchy, CacheSim
from repro.hwmodel.roofline import (
    Roofline,
    RooflinePoint,
    pipeline_roofline_points,
)
from repro.hwmodel.report import (
    PipelineCharacterization,
    characterize_pipeline,
)
from repro.hwmodel.threads import (
    ScheduleResult,
    compare_to_measured,
    load_measured_curve,
    model_measured_gap,
    scaling_curve,
    simulate_schedule,
)
from repro.hwmodel.gpu import (
    GpuConfig,
    GpuKernelModel,
    GpuKernelReport,
    StallBreakdown,
    Word2vecGpuModel,
    classifier_kernel,
    walk_kernel,
    word2vec_kernel,
)

__all__ = [
    "InstructionMix",
    "KernelProfile",
    "profile_random_walk",
    "profile_word2vec",
    "profile_classifier",
    "CacheConfig",
    "CacheSim",
    "CacheHierarchy",
    "Roofline",
    "RooflinePoint",
    "pipeline_roofline_points",
    "PipelineCharacterization",
    "characterize_pipeline",
    "ScheduleResult",
    "simulate_schedule",
    "scaling_curve",
    "compare_to_measured",
    "load_measured_curve",
    "model_measured_gap",
    "GpuConfig",
    "GpuKernelModel",
    "GpuKernelReport",
    "StallBreakdown",
    "Word2vecGpuModel",
    "walk_kernel",
    "word2vec_kernel",
    "classifier_kernel",
]
