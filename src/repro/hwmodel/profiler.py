"""Per-kernel dynamic instruction mixes (Fig. 9).

The paper instruments its C++ kernels with the MICA Pintool and reports,
per kernel, the split between memory, branch, compute and other
instructions.  We reproduce the breakdown by replaying each kernel's
*measured* work statistics (candidates scanned, search iterations, pairs
trained, GEMM dimensions — all recorded by the actual Python kernels)
through explicit per-event instruction cost tables.

The cost tables describe the paper's C++/x86 implementations, not the
numpy ones: e.g. one scanned temporal neighbor costs two loads (the AoS
destination+timestamp element), one loop branch, two integer index ops
and five fp ops (a fast-exp evaluation plus the running normalization of
Eq. 1).  The *shape* claims of Fig. 9 — every kernel has both heavy
memory and heavy compute, and the walk kernel is far more fp-heavy than
a classic traversal — follow from the measured statistics; the tables
only set the per-event constants.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.embedding.trainer import SgnsConfig, TrainerStats
from repro.hwmodel.instruction import InstructionMix
from repro.walk.engine import WalkStats


@dataclass
class KernelProfile:
    """One kernel's instruction mix plus free-form derivation notes."""

    name: str
    mix: InstructionMix
    notes: dict[str, float] = field(default_factory=dict)

    def fractions(self) -> dict[str, float]:
        """Normalized shares per category."""
        return self.mix.fractions()


# ---------------------------------------------------------------------------
# Cost tables (instructions per event, x86-calibrated)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WalkCostTable:
    """Instruction costs of the temporal-walk kernel's events."""

    # Per temporal-neighbor candidate scanned (Eq. 1 evaluation):
    candidate_memory: float = 2.5   # AoS load: destination + timestamp
    candidate_fp: float = 2.0       # fast-exp + running softmax normalization
    candidate_int: float = 1.0      # index arithmetic
    candidate_branch: float = 1.2   # scan-loop back-edge, bounds check
    # Per binary-search iteration locating the valid range:
    search_memory: float = 1.0
    search_branch: float = 1.0
    search_int: float = 3.0
    # Per walk step (state update, RNG, output write):
    step_memory: float = 5.0        # indptr pair, state, output store
    step_fp: float = 4.0            # RNG-to-float, inverse-CDF division
    step_int: float = 8.0           # RNG integer pipeline, bookkeeping
    step_branch: float = 2.0
    step_other: float = 4.0         # call/stack
    # Per walk (setup/teardown):
    walk_memory: float = 2.0
    walk_int: float = 4.0
    walk_other: float = 6.0


@dataclass(frozen=True)
class Word2vecCostTable:
    """Instruction costs of SGNS events (per trained pair, dim d, K negs)."""

    row_touch_memory: float = 2.0   # load + store per embedding element
    fp_per_element: float = 2.0     # SIMD dot + axpy updates
    fp_per_score: float = 8.0       # sigmoid evaluation per (1+K) score
    int_per_row: float = 3.0        # row index / alias-table sampling
    branch_per_row: float = 3.0
    other_per_pair: float = 25.0    # call frames, RNG state, window logic


@dataclass(frozen=True)
class GemmCostTable:
    """Instruction costs of a blocked SIMD GEMM (per (m, k, n) call)."""

    simd_width: int = 8             # AVX2 doubles-equivalent lanes
    memory_reuse: float = 2.0       # each operand element touched ~twice
    int_per_tile: float = 1.0       # address arithmetic per 8-wide tile
    branch_per_tile: float = 0.25
    other_per_tile: float = 0.5     # SIMD shuffles, prefetch


WALK_COSTS = WalkCostTable()
W2V_COSTS = Word2vecCostTable()
GEMM_COSTS = GemmCostTable()


# ---------------------------------------------------------------------------
# Kernel profiles
# ---------------------------------------------------------------------------


def profile_random_walk(
    stats: WalkStats, costs: WalkCostTable = WALK_COSTS
) -> KernelProfile:
    """Instruction mix of the temporal-walk kernel from measured stats."""
    c = stats.candidates_scanned
    s = stats.total_steps
    b = stats.search_iterations
    w = stats.num_walks
    mix = InstructionMix(
        memory=(
            c * costs.candidate_memory
            + b * costs.search_memory
            + s * costs.step_memory
            + w * costs.walk_memory
        ),
        branch=(
            c * costs.candidate_branch
            + b * costs.search_branch
            + s * costs.step_branch
        ),
        compute_int=(
            c * costs.candidate_int
            + b * costs.search_int
            + s * costs.step_int
            + w * costs.walk_int
        ),
        compute_fp=c * costs.candidate_fp + s * costs.step_fp,
        other=s * costs.step_other + w * costs.walk_other,
    )
    return KernelProfile(
        name="rwalk",
        mix=mix,
        notes={
            "candidates": float(c),
            "steps": float(s),
            "search_iterations": float(b),
            "walks": float(w),
        },
    )


def profile_word2vec(
    stats: TrainerStats,
    config: SgnsConfig,
    costs: Word2vecCostTable = W2V_COSTS,
) -> KernelProfile:
    """Instruction mix of SGNS training from measured pair counts."""
    pairs = stats.pairs_trained
    d = config.dim
    rows = 2 + config.negatives       # center + context + K negatives
    scores = 1 + config.negatives
    mix = InstructionMix(
        memory=pairs * rows * d * costs.row_touch_memory,
        branch=pairs * rows * costs.branch_per_row + pairs * d * 0.25,
        compute_int=pairs * rows * costs.int_per_row + pairs * d,
        compute_fp=pairs * (scores * d * costs.fp_per_element
                            + scores * costs.fp_per_score),
        other=pairs * costs.other_per_pair,
    )
    return KernelProfile(
        name="word2vec",
        mix=mix,
        notes={"pairs": float(pairs), "dim": float(d)},
    )


def gemm_mix(
    m: int, k: int, n: int, costs: GemmCostTable = GEMM_COSTS
) -> InstructionMix:
    """Instruction mix of one blocked SIMD GEMM call."""
    flops = 2.0 * m * k * n
    fp_instructions = flops / costs.simd_width
    tiles = (m * k * n) / costs.simd_width
    element_traffic = (m * k + k * n + 2 * m * n) * costs.memory_reuse
    return InstructionMix(
        memory=element_traffic,
        branch=tiles * costs.branch_per_tile,
        compute_int=tiles * costs.int_per_tile,
        compute_fp=fp_instructions,
        other=tiles * costs.other_per_tile,
    )


def profile_classifier(
    name: str,
    layer_dims: list[tuple[int, int]],
    samples: int,
    batch_size: int,
    training: bool = True,
    costs: GemmCostTable = GEMM_COSTS,
) -> KernelProfile:
    """Instruction mix of the FNN train or test phase.

    ``layer_dims`` lists each Linear layer's (in, out); ``samples`` is
    the total number of examples processed (summed over epochs for
    training).  Training runs three GEMMs per layer (forward, weight
    grad, input grad); inference one.  Activation/loss element work is
    added per intermediate element.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    batches = max(1, samples // batch_size)
    mix = InstructionMix()
    for in_dim, out_dim in layer_dims:
        per_batch = gemm_mix(batch_size, in_dim, out_dim, costs)
        gemms = 3 if training else 1
        mix = mix + per_batch.scaled(batches * gemms)
        # Activation + bias element work per output element.
        elements = samples * out_dim
        mix = mix + InstructionMix(
            memory=2.0 * elements,
            branch=0.5 * elements,
            compute_fp=(3.0 if training else 1.5) * elements,
            compute_int=0.5 * elements,
            other=0.25 * elements,
        )
    return KernelProfile(
        name=name,
        mix=mix,
        notes={
            "samples": float(samples),
            "batch_size": float(batch_size),
            "layers": float(len(layer_dims)),
        },
    )


def profile_bfs(
    edges_scanned: int, nodes_visited: int
) -> KernelProfile:
    """Instruction mix of a classic BFS traversal (the Fig. 3/9 contrast).

    Per scanned edge: two loads (neighbor id, visited flag), a branch and
    two integer ops — and crucially *no* floating-point work, which is
    exactly the contrast Fig. 9 draws against the temporal walk's Eq. 1
    arithmetic.
    """
    mix = InstructionMix(
        memory=2.0 * edges_scanned + 3.0 * nodes_visited,
        branch=1.5 * edges_scanned + 1.0 * nodes_visited,
        compute_int=2.0 * edges_scanned + 3.0 * nodes_visited,
        compute_fp=0.0,
        other=1.0 * nodes_visited,
    )
    return KernelProfile(
        name="bfs",
        mix=mix,
        notes={
            "edges_scanned": float(edges_scanned),
            "nodes_visited": float(nodes_visited),
        },
    )
