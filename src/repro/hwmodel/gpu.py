"""Analytic GPU execution and stall model.

Stands in for Nsight Compute on real Ampere hardware.  A kernel is
described by *measured workload parameters* (work items, fp ops and bytes
per item, divergence, dependence-chain length, synchronization count,
working-set size), and :meth:`GpuKernelModel.report` converts them into
the metrics the paper reports:

- Fig. 3: SM utilization, L2 hit rate, DRAM bandwidth utilization, load
  imbalance, irregularity (replayed/issued instruction ratio);
- Fig. 11: the stall-cycle breakdown (IMC miss, compute dependency,
  instruction cache, memory scoreboard, pipe/MIO busy, barrier, TEX
  queue, other);
- Table III GPU columns: kernel time including launch and PCIe transfer.

The derivation rules are explicit and monotone in the workload inputs
(e.g. compute-dependency stalls grow with serialized fp ops per item;
IMC-miss stalls grow as active warps shrink, because immediate loads get
no reuse — §VII-B's explanation for the classifier kernels), so the
Fig. 11 shape emerges from the measured kernel differences rather than
hard-coded percentages.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ModelError


@dataclass(frozen=True)
class GpuConfig:
    """Ampere-class device parameters (defaults ~A100)."""

    num_sms: int = 108
    warp_size: int = 32
    max_warps_per_sm: int = 64
    clock_ghz: float = 1.41
    fp_tflops: float = 19.5            # peak fp32 FMA throughput
    dram_bw_gbs: float = 1555.0
    l2_bytes: int = 40 * 1024 * 1024
    pcie_gbs: float = 16.0
    launch_overhead_s: float = 5e-6

    @property
    def max_warps(self) -> int:
        """Device-wide resident-warp capacity."""
        return self.num_sms * self.max_warps_per_sm


@dataclass(frozen=True)
class CpuConfig:
    """EPYC-class host parameters (defaults ~dual 7742)."""

    cores: int = 128
    clock_ghz: float = 2.25
    ipc: float = 2.0
    dram_bw_gbs: float = 380.0
    parallel_efficiency: float = 0.7


STALL_CATEGORIES = (
    "imc_miss",
    "compute_dependency",
    "icache_miss",
    "memory_scoreboard",
    "pipe_mio_busy",
    "barrier",
    "tex_queue",
    "other",
)


@dataclass
class StallBreakdown:
    """Per-category stall weight; :meth:`fractions` normalizes."""

    imc_miss: float = 0.0
    compute_dependency: float = 0.0
    icache_miss: float = 0.0
    memory_scoreboard: float = 0.0
    pipe_mio_busy: float = 0.0
    barrier: float = 0.0
    tex_queue: float = 0.0
    other: float = 0.0

    def fractions(self) -> dict[str, float]:
        """Normalized shares per category."""
        values = {c: getattr(self, c) for c in STALL_CATEGORIES}
        total = sum(values.values())
        if total == 0:
            return {c: 0.0 for c in STALL_CATEGORIES}
        return {c: v / total for c, v in values.items()}

    def dominant(self) -> str:
        """Category holding the largest share."""
        fracs = self.fractions()
        return max(fracs, key=fracs.get)


@dataclass
class GpuKernelReport:
    """All modeled metrics for one kernel."""

    name: str
    time_seconds: float
    launch_seconds: float
    transfer_seconds: float
    sm_utilization: float
    l2_hit_rate: float
    dram_bw_utilization: float
    load_imbalance: float
    irregularity: float
    stalls: StallBreakdown

    def metric_row(self) -> dict[str, float]:
        """Fig. 3's metric columns."""
        return {
            "sm_util": self.sm_utilization,
            "l2_hit": self.l2_hit_rate,
            "dram_bw": self.dram_bw_utilization,
            "imbalance": self.load_imbalance,
            "irregularity": self.irregularity,
        }


@dataclass
class GpuKernelModel:
    """Workload-side description of one kernel (measured quantities).

    Parameters
    ----------
    items:
        Independent parallel work items (walks, pairs, output tiles).
    fp_per_item / loads_per_item / bytes_per_item:
        Average compute and memory work per item.
    serial_fp_chain:
        Length of the *dependent* fp chain within an item (drives
        compute-dependency stalls; Eq. 1's exp/div chain for the walk).
    irregular_fraction:
        Fraction of loads that are data-dependent/non-coalesced
        (drives memory-scoreboard stalls and replay irregularity).
    divergence_cv:
        Coefficient of variation of per-item work (drives TEX-queue
        stalls, load imbalance and replays).
    syncs_per_item:
        Barrier synchronizations per item (pre-optimization word2vec).
    working_set_bytes:
        Resident data footprint (drives the L2 hit-rate estimate).
    kernel_launches:
        Number of device kernel launches (1 for fused/batched kernels,
        one per sentence for unbatched word2vec).
    transfer_bytes:
        Host-device traffic for the phase.
    """

    name: str
    items: float
    fp_per_item: float
    loads_per_item: float
    bytes_per_item: float
    serial_fp_chain: float = 1.0
    irregular_fraction: float = 0.0
    divergence_cv: float = 0.0
    syncs_per_item: float = 0.0
    working_set_bytes: float = 0.0
    kernel_launches: int = 1
    transfer_bytes: float = 0.0

    def __post_init__(self) -> None:
        if self.items < 0:
            raise ModelError("items must be non-negative")
        if not 0.0 <= self.irregular_fraction <= 1.0:
            raise ModelError("irregular_fraction must be in [0, 1]")

    # ------------------------------------------------------------------
    def report(self, config: GpuConfig = GpuConfig()) -> GpuKernelReport:
        """Compute all modeled metrics for this kernel."""
        total_fp = self.items * self.fp_per_item
        total_bytes = self.items * self.bytes_per_item

        # Occupancy: how many warps the grid can keep resident.
        warps_needed = max(1.0, self.items / config.warp_size)
        occupancy = min(1.0, warps_needed / config.max_warps)

        # L2 behaviour: reuse succeeds when the working set fits; the
        # irregular fraction degrades it further (pointer-chased lines
        # evict before reuse).
        if self.working_set_bytes <= 0:
            capacity_hit = 1.0
        else:
            capacity_hit = min(1.0, config.l2_bytes / self.working_set_bytes)
        l2_hit = capacity_hit * (1.0 - 0.6 * self.irregular_fraction)

        # Effective memory efficiency: non-coalesced accesses waste line
        # bandwidth; divergence splits warps.
        coalesce_eff = 1.0 - 0.75 * self.irregular_fraction
        divergence_eff = 1.0 / (1.0 + self.divergence_cv)

        compute_seconds = total_fp / (
            config.fp_tflops * 1e12 * occupancy * divergence_eff + 1e-30
        )
        dram_traffic = total_bytes * (1.0 - l2_hit * 0.8)
        memory_seconds = dram_traffic / (
            config.dram_bw_gbs * 1e9 * coalesce_eff + 1e-30
        )
        busy_seconds = max(compute_seconds, memory_seconds)
        launch_seconds = self.kernel_launches * config.launch_overhead_s
        transfer_seconds = self.transfer_bytes / (config.pcie_gbs * 1e9 + 1e-30)
        sync_seconds = (
            self.syncs_per_item * self.items / (config.clock_ghz * 1e9) * 20.0
        )
        total_seconds = busy_seconds + launch_seconds + transfer_seconds + sync_seconds

        sm_util = occupancy * (compute_seconds / (total_seconds + 1e-30))
        dram_util = dram_traffic / (
            config.dram_bw_gbs * 1e9 * total_seconds + 1e-30
        )
        load_imbalance = 1.0 + self.divergence_cv
        irregularity = (
            self.irregular_fraction * 2.0 + 0.5 * self.divergence_cv
        )

        stalls = self._stalls(occupancy, l2_hit)
        return GpuKernelReport(
            name=self.name,
            time_seconds=total_seconds,
            launch_seconds=launch_seconds,
            transfer_seconds=transfer_seconds,
            sm_utilization=float(np.clip(sm_util, 0.0, 1.0)),
            l2_hit_rate=float(np.clip(l2_hit, 0.0, 1.0)),
            dram_bw_utilization=float(np.clip(dram_util, 0.0, 1.0)),
            load_imbalance=load_imbalance,
            irregularity=irregularity,
            stalls=stalls,
        )

    def _stalls(self, occupancy: float, l2_hit: float) -> StallBreakdown:
        """Derive stall weights from workload structure.

        Each weight is (events per item) x (penalty per event), with
        penalties chosen once for all kernels; the *relative* shape per
        kernel is therefore workload-driven.
        """
        # Long dependent fp chains stall the issue stage when few other
        # warps can cover the latency; a chain of 1 (independent FMAs)
        # pipelines almost fully.
        compute_dep = max(self.serial_fp_chain - 1.0, 0.1) * self.fp_per_item * 0.4
        # Data-dependent loads wait on the scoreboard, worse on misses.
        memory_dep = (
            self.loads_per_item
            * self.irregular_fraction
            * (1.0 + 4.0 * (1.0 - l2_hit))
            * 1.2
        )
        # Immediate-constant cache misses: immediates are re-fetched per
        # warp; with few resident warps there is no reuse (§VII-B's
        # explanation for the classifier kernels).
        imc = np.sqrt(1.0 / max(occupancy, 1e-3)) * (
            1.0 + self.fp_per_item * 0.02
        )
        # Divergence splits warps and queues TEX/I-cache requests.
        tex = self.divergence_cv * self.loads_per_item * 0.5
        icache = 0.02 * (1.0 + self.divergence_cv)
        pipe_mio = 0.15 * self.loads_per_item * (1.0 - self.irregular_fraction)
        barrier = self.syncs_per_item * 12.0
        other = 0.05 * (self.fp_per_item + self.loads_per_item)
        return StallBreakdown(
            imc_miss=imc,
            compute_dependency=compute_dep,
            icache_miss=icache,
            memory_scoreboard=memory_dep,
            pipe_mio_busy=pipe_mio,
            barrier=barrier,
            tex_queue=tex,
            other=other,
        )


# ---------------------------------------------------------------------------
# Kernel constructors from measured workload statistics
# ---------------------------------------------------------------------------


def walk_kernel(walk_stats, graph, transfer_bytes: float | None = None
                ) -> GpuKernelModel:
    """GPU model of the temporal-walk kernel from its measured stats."""
    items = max(1, walk_stats.num_walks)
    steps_per_walk = walk_stats.total_steps / items
    cand_per_walk = walk_stats.candidates_scanned / items
    degrees = np.diff(graph.indptr)
    mean_deg = degrees.mean() if len(degrees) else 0.0
    cv = float(degrees.std() / mean_deg) if mean_deg > 0 else 0.0
    if transfer_bytes is None:
        transfer_bytes = graph.num_edges * 16 + items * 8
    return GpuKernelModel(
        name="rwalk",
        items=items,
        # Eq. 1 per candidate: exp + div chain (serialized), RNG per step.
        fp_per_item=cand_per_walk * 5.0 + steps_per_walk * 4.0,
        loads_per_item=cand_per_walk * 2.0 + steps_per_walk * 6.0,
        bytes_per_item=cand_per_walk * 16.0 + steps_per_walk * 32.0,
        serial_fp_chain=6.0,     # exp polynomial + normalization divide
        irregular_fraction=0.35,  # CSR slices are local; hops are not
        divergence_cv=cv,
        working_set_bytes=graph.num_edges * 16.0,
        kernel_launches=1,
        transfer_bytes=transfer_bytes,
    )


def word2vec_kernel(
    trainer_stats,
    sgns_config,
    num_nodes: int,
    batch_sentences: int = 1,
) -> GpuKernelModel:
    """GPU model of SGNS training from its measured pair counts."""
    pairs = max(1, trainer_stats.pairs_trained)
    d = sgns_config.dim
    rows = 2 + sgns_config.negatives
    return GpuKernelModel(
        name="word2vec",
        items=pairs,
        fp_per_item=(1 + sgns_config.negatives) * 6.0 * d,
        loads_per_item=rows * d,
        bytes_per_item=rows * d * 8.0,
        serial_fp_chain=1.2,          # dot-product reductions pipeline well
        # Embedding-row gathers follow walk-produced node ids: irregular.
        irregular_fraction=0.7,
        divergence_cv=0.3,
        working_set_bytes=2.0 * num_nodes * d * 4.0,
        kernel_launches=max(1, trainer_stats.updates),
        transfer_bytes=pairs * 8.0 / max(1, batch_sentences) * 64.0,
    )


def classifier_kernel(
    name: str,
    layer_dims: list[tuple[int, int]],
    batch_size: int,
    samples: int,
    training: bool = True,
) -> GpuKernelModel:
    """GPU model of the FNN train/test phase (small GEMMs, §VII-B)."""
    gemms = 3 if training else 1
    fp_total = sum(2.0 * batch_size * i * o * gemms for i, o in layer_dims)
    batches = max(1, samples // batch_size)
    weight_bytes = sum(i * o for i, o in layer_dims) * 4.0
    act_bytes = sum(batch_size * (i + o) for i, o in layer_dims) * 4.0
    # One "item" = one output tile of the largest GEMM; small layers make
    # few tiles, hence few warps, hence the low occupancy that drives the
    # IMC-dominated stall profile.
    largest = max(batch_size * o for _, o in layer_dims)
    items = float(largest / 4.0)
    return GpuKernelModel(
        name=name,
        items=items,
        fp_per_item=fp_total / batches / items,
        loads_per_item=(weight_bytes + act_bytes) / 4.0 / items,
        bytes_per_item=(weight_bytes + act_bytes) / items,
        serial_fp_chain=1.0,
        irregular_fraction=0.05,
        divergence_cv=0.05,
        working_set_bytes=weight_bytes + act_bytes,
        kernel_launches=batches * len(layer_dims) * gemms,
        transfer_bytes=samples * (layer_dims[0][0] * 4.0),
    )


# ---------------------------------------------------------------------------
# Fig. 5 / Fig. 6 word2vec GPU optimization model
# ---------------------------------------------------------------------------


@dataclass
class Word2vecGpuModel:
    """Models the §V-B GPU word2vec implementation and its optimizations.

    ``batched_time(batch)`` reproduces the Fig. 5 sweep: per-batch cost is
    one kernel launch + one host-device transfer + device work that
    parallelizes across the sentences in the batch; sentence-at-a-time
    execution is the degenerate ``batch=1``.

    ``optimized_time(...)`` layers the Fig. 6 ablations on the batched
    kernel: removing cache-line padding (line utilization d*4/128 -> 1),
    coalescing embedding-dimension accesses across threads, parallel
    reduction for the dot products, and replacing block barriers with
    in-warp synchronization.
    """

    num_sentences: int
    pairs_per_sentence: float
    dim: int = 8
    negatives: int = 5
    config: GpuConfig = field(default_factory=GpuConfig)

    # Serialized-accumulation and block-barrier penalties per pair
    # (seconds at the modeled clock); removed by the Par-red stage.
    _SERIAL_REDUCTION_S = 6e-10
    _PARALLEL_REDUCTION_S = 5e-11
    _BLOCK_SYNC_S = 8e-10

    def _device_pair_seconds(
        self,
        line_utilization: float,
        coalesced: bool,
        parallel_reduction: bool,
        block_sync: bool,
    ) -> float:
        """Device throughput cost per trained pair under the optimizations.

        The three terms serialize inside the per-pair thread group:
        memory traffic for the (2+K) embedding rows (padding inflates
        bytes, non-coalesced access wastes transaction bandwidth), the
        fp work (a serialized accumulation wastes the lanes parallel
        reduction would use), and the block-wide barrier between the
        gather and update phases (removed together with Par-red by
        relying on in-warp synchronization).
        """
        cfg = self.config
        rows = 2 + self.negatives
        scores = 1 + self.negatives
        bytes_touched = rows * self.dim * 4.0 / line_utilization
        mem_eff = 0.9 if coalesced else 0.25
        memory = bytes_touched / (cfg.dram_bw_gbs * 1e9 * mem_eff)
        fp = scores * 6.0 * self.dim
        scale = (self.dim / 8.0) * (scores / 6.0)
        reduction = (
            self._PARALLEL_REDUCTION_S if parallel_reduction
            else self._SERIAL_REDUCTION_S
        ) * scale
        compute = fp / (cfg.fp_tflops * 1e12) + reduction
        sync = self._BLOCK_SYNC_S if block_sync else 0.0
        return memory + compute + sync

    def batched_time(
        self,
        batch_sentences: int,
        line_utilization: float | None = None,
        coalesced: bool = False,
        parallel_reduction: bool = False,
        block_sync: bool = True,
        sentence_bytes: float = 64.0,
    ) -> float:
        """Total seconds to train one epoch with the given batch size.

        Per batch: one kernel launch, one host-device transfer of the
        batch's walk ids (embeddings stay resident), and the device work
        of all its pairs.  ``batch_sentences=1`` is the prior
        implementations' sentence-at-a-time execution whose launch
        overhead Fig. 5 shows batching amortizes.
        """
        if batch_sentences < 1:
            raise ModelError("batch_sentences must be >= 1")
        cfg = self.config
        if line_utilization is None:
            # Prior implementation pads each row to a 128-byte line.
            line_utilization = min(1.0, self.dim * 4.0 / 128.0)
        batch_sentences = min(batch_sentences, max(1, self.num_sentences))
        batches = -(-self.num_sentences // batch_sentences)
        pairs_per_batch = self.pairs_per_sentence * batch_sentences
        pair_s = self._device_pair_seconds(
            line_utilization, coalesced, parallel_reduction, block_sync
        )
        per_batch = (
            cfg.launch_overhead_s
            + (batch_sentences * sentence_bytes) / (cfg.pcie_gbs * 1e9)
            + pairs_per_batch * pair_s
        )
        return batches * per_batch

    def batching_speedups(self, batch_sizes: list[int]) -> dict[int, float]:
        """Fig. 5: speedup of each batch size over no batching."""
        base = self.batched_time(1)
        return {b: base / self.batched_time(b) for b in batch_sizes}

    def optimization_ladder(self, batch_sentences: int = 16384
                            ) -> dict[str, float]:
        """Fig. 6: cumulative speedups of Batch, No-pad, Coalesce, Par-red.

        Values are speedups over the unbatched, padded, uncoalesced
        baseline, adding one optimization at a time in the paper's order.
        """
        base = self.batched_time(1)
        ladder = {}
        ladder["batch"] = base / self.batched_time(batch_sentences)
        ladder["no-pad"] = base / self.batched_time(
            batch_sentences, line_utilization=1.0
        )
        ladder["coalesce"] = base / self.batched_time(
            batch_sentences, line_utilization=1.0, coalesced=True
        )
        ladder["par-red"] = base / self.batched_time(
            batch_sentences, line_utilization=1.0, coalesced=True,
            parallel_reduction=True, block_sync=False,
        )
        return ladder


# ---------------------------------------------------------------------------
# CPU time model (Table III CPU columns)
# ---------------------------------------------------------------------------


def cpu_time_seconds(
    instructions: float,
    bytes_touched: float,
    threads: int = 64,
    config: CpuConfig = CpuConfig(),
) -> float:
    """Roofline-style CPU phase time from instruction and byte counts."""
    cores = min(threads, config.cores)
    eff = config.parallel_efficiency if cores > 1 else 1.0
    instr_s = instructions / (config.ipc * config.clock_ghz * 1e9 * cores * eff)
    mem_s = bytes_touched / (config.dram_bw_gbs * 1e9)
    return max(instr_s, mem_s)
