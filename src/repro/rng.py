"""Seeded random-number utilities.

Every stochastic component in the library accepts either an integer seed or
an already-constructed :class:`numpy.random.Generator`.  Centralizing the
coercion here keeps experiments reproducible: the same seed always produces
the same walks, negative samples, and initial weights.
"""

from __future__ import annotations

import numpy as np

SeedLike = int | np.random.Generator | None

_DEFAULT_SEED = 0x5EED


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a numpy Generator for ``seed``.

    ``None`` maps to a fixed library-wide default seed (experiments should
    be reproducible by default); a Generator is passed through unchanged so
    callers can share one stream across components.
    """
    if seed is None:
        return np.random.default_rng(_DEFAULT_SEED)
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``count`` independent child generators.

    Used by parallel components (e.g. one stream per simulated thread) so
    results do not depend on scheduling order.
    """
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(count)]
