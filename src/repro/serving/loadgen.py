"""Closed-loop load generator for the serving frontend.

Drives :class:`~repro.serving.frontend.ServingFrontend` the way the
``serve-sim`` CLI and the serving bench need: ``clients`` threads each
issue their next request as soon as the previous one completes
(closed-loop, so offered load adapts to achieved latency), with a
two-tier popularity model — a small hot set absorbs most top-k traffic,
which is what makes the LRU result cache earn its keep, exactly like
the skewed access patterns of a production recommender.

The report carries achieved QPS and client-side latency percentiles;
the richer breakdown (batch sizes, cache hits, GEMM rows, per-type
latency histograms) lands in the ambient recorder.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

import numpy as np

from repro.errors import ServingError
from repro.observability import get_recorder
from repro.rng import SeedLike, make_rng


@dataclass(frozen=True)
class LoadReport:
    """One load-generation run's client-side measurements."""

    requests: int
    errors: int
    seconds: float
    qps: float
    score_requests: int
    topk_requests: int
    mean_latency_ms: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    max_ms: float

    def as_row(self) -> dict[str, float | int]:
        """Dict form for table rendering."""
        return {
            "requests": self.requests,
            "qps": round(self.qps, 1),
            "mean ms": round(self.mean_latency_ms, 3),
            "p50 ms": round(self.p50_ms, 3),
            "p95 ms": round(self.p95_ms, 3),
            "p99 ms": round(self.p99_ms, 3),
            "errors": self.errors,
        }


def run_load(
    frontend,
    num_requests: int = 2000,
    clients: int = 4,
    topk_fraction: float = 0.5,
    k: int | None = None,
    hot_fraction: float = 0.8,
    hot_nodes: int = 64,
    seed: SeedLike = None,
) -> LoadReport:
    """Run a closed-loop load test; returns the client-side report.

    ``frontend`` is any query surface with ``top_k(node, k)``,
    ``score_link(src, dst)`` and ``num_nodes``
    (:class:`~repro.serving.frontend.ServingFrontend` or
    :class:`~repro.serving.sharding.ShardedFrontend`).
    ``num_requests`` is split across ``clients`` threads — near-evenly,
    with the remainder spread one request each over the first
    ``num_requests % clients`` clients, so exactly ``num_requests``
    requests are issued whatever the division leaves over.
    ``topk_fraction`` of requests are top-k recommendations, the rest
    link scores.  ``hot_fraction`` of query nodes come from a hot set
    of ``hot_nodes`` ids (cache-friendly skew); the rest are uniform.
    """
    if num_requests < 1:
        raise ServingError(f"num_requests must be >= 1, got {num_requests}")
    if clients < 1:
        raise ServingError(f"clients must be >= 1, got {clients}")
    if not 0.0 <= topk_fraction <= 1.0:
        raise ServingError(
            f"topk_fraction must be in [0, 1], got {topk_fraction}"
        )
    if not 0.0 <= hot_fraction <= 1.0:
        raise ServingError(
            f"hot_fraction must be in [0, 1], got {hot_fraction}"
        )
    num_nodes = frontend.num_nodes
    rng = make_rng(seed)
    hot = rng.permutation(num_nodes)[:max(1, min(hot_nodes, num_nodes))]

    def draw_nodes(count: int) -> np.ndarray:
        use_hot = rng.random(count) < hot_fraction
        nodes = rng.integers(0, num_nodes, size=count)
        nodes[use_hot] = hot[rng.integers(0, len(hot),
                                          size=int(use_hot.sum()))]
        return nodes

    # Pregenerate every client's request tape so the measured loop does
    # nothing but issue requests and read the clock.  The remainder of
    # num_requests / clients goes one extra request to each of the
    # first few tapes: rounding every tape up would issue up to
    # clients - 1 requests beyond what the caller asked for.
    base, remainder = divmod(num_requests, clients)
    tapes = []
    for idx in range(clients):
        tape_len = base + (1 if idx < remainder else 0)
        is_topk = rng.random(tape_len) < topk_fraction
        nodes = draw_nodes(tape_len)
        peers = draw_nodes(tape_len)
        tapes.append((is_topk, nodes, peers))

    latencies: list[list[float]] = [[] for _ in range(clients)]
    errors = [0] * clients
    counts = [[0, 0] for _ in range(clients)]  # [score, topk]
    barrier = threading.Barrier(clients + 1)

    def client(idx: int) -> None:
        is_topk, nodes, peers = tapes[idx]
        local_lat = latencies[idx]
        barrier.wait()
        for i in range(len(is_topk)):
            start = time.monotonic()
            try:
                if is_topk[i]:
                    frontend.top_k(int(nodes[i]), k)
                    counts[idx][1] += 1
                else:
                    frontend.score_link(int(nodes[i]), int(peers[i]))
                    counts[idx][0] += 1
            except ServingError:
                errors[idx] += 1
            local_lat.append(time.monotonic() - start)

    rec = get_recorder()

    threads = [
        threading.Thread(target=client, args=(idx,), daemon=True,
                         name=f"loadgen-{idx}")
        for idx in range(clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    wall_start = time.monotonic()
    for thread in threads:
        thread.join()
    wall = time.monotonic() - wall_start

    lat_ms = np.asarray(
        [value for client_lat in latencies for value in client_lat]
    ) * 1e3
    total = int(lat_ms.size)
    # Client-side view for the ambient recorder, so serve-sim/stream-sim
    # metric exports carry achieved latency next to the server-side
    # serving.* internals (no-op under the NullRecorder).
    for value in lat_ms:
        rec.observe("loadgen.latency_ms", float(value))
    # errors is a [0] * clients list — truthy even when every count is
    # zero — so guard on the sum, not the list, or every clean run
    # emits a spurious loadgen.errors = 0.
    if sum(errors):
        rec.counter("loadgen.errors", int(sum(errors)))
    return LoadReport(
        requests=total,
        errors=int(sum(errors)),
        seconds=wall,
        qps=total / wall if wall > 0 else 0.0,
        score_requests=int(sum(c[0] for c in counts)),
        topk_requests=int(sum(c[1] for c in counts)),
        mean_latency_ms=float(lat_ms.mean()) if total else 0.0,
        p50_ms=float(np.percentile(lat_ms, 50)) if total else 0.0,
        p95_ms=float(np.percentile(lat_ms, 95)) if total else 0.0,
        p99_ms=float(np.percentile(lat_ms, 99)) if total else 0.0,
        max_ms=float(lat_ms.max()) if total else 0.0,
    )
