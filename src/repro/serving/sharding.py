"""Sharded scatter/gather serving: the embedding space across processes.

Everything up to PR 7 serves from one process; the "millions of users"
scenario needs the embedding space *partitioned* across real processes
with a router in front — the same ingest → train → publish → route
pipeline that "Towards Real-Time Temporal Graph Learning" overlaps
across CPU/GPU stages, here spread across shard workers.  Four pieces:

- :class:`ShardPlan` — the deterministic partitioner.  ``hash`` spreads
  node ids via a Fibonacci mixing hash (load-balanced, stable per id);
  ``range`` assigns contiguous id ranges (locality-preserving, and
  re-balanced automatically when the node count grows between
  publishes).
- :class:`EmbeddingShard` workers — one process per shard, each owning
  a shard-local :class:`~repro.serving.store.EmbeddingStore` +
  :class:`~repro.serving.index.RecommendationIndex` (exact, or a
  per-shard :class:`~repro.serving.ann.IvfIndex`) plus an LRU of
  answered sub-queries.  Slices arrive through
  :class:`~repro.parallel.shared_array.SharedArray` blocks, not the
  command pipe.
- :class:`ShardedFrontend` — the router.  ``top_k`` is a
  scatter/gather: fetch the query vector from the owning shard (router
  LRU caches it per version), broadcast it, take each shard's local
  top-k, merge with the documented (score desc, lower global id)
  tie-break — **bit-identical** to the single-process oracle.
  ``score_link`` routes to the owning shard of one endpoint and ships
  the other endpoint's vector when the pair spans shards.  When a
  worker dies the router degrades: surviving shards still answer and
  every partial gather is counted (``serving.shard.degraded_queries``).
- :class:`ShardedPublisher` — slices each new snapshot per shard,
  installs every slice under one new version, and only then flips the
  router's served version.  Queries carry the version they were routed
  under and workers retain the previous version, so **no gather can
  ever mix two versions across shards** (the sharded analogue of the
  store's atomic snapshot swap).

Known trade-off: each worker handles its command pipe serially, so a
publish (slice install + optional IVF build) briefly queues behind /
ahead of that shard's sub-queries — availability is bounded by install
time, never correctness.

Oracle harness: ``tests/test_serving_shards.py`` (``pytest -m
shards``); capacity curve: ``benchmarks/bench_serving_shards.py``.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from multiprocessing import resource_tracker

import numpy as np

from repro.errors import ServingError
from repro.observability import get_recorder
from repro.parallel.shared_array import SharedArray, SharedArraySpec
from repro.parallel.supervisor import _mp_context
from repro.serving.ann import INDEX_CHOICES, IvfConfig, IvfIndex
from repro.serving.index import METRIC_CHOICES, RecommendationIndex, TopK
from repro.serving.store import EmbeddingStore

PLAN_CHOICES = ("hash", "range")

#: Knuth's 64-bit golden-ratio multiplier; mixes consecutive node ids
#: into well-spread shard assignments.
_GOLDEN = np.uint64(0x9E3779B97F4A7C15)


class _ShardDownError(ServingError):
    """The target worker process is dead (gathers degrade on this)."""


class _StaleVersionError(ServingError):
    """The worker already dropped the requested version (router retries)."""


# ---------------------------------------------------------------------------
# Partitioner
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ShardPlan:
    """Deterministic node-id → shard assignment.

    ``hash`` mixes each id with the 64-bit golden-ratio multiplier and
    takes the high bits modulo ``num_shards`` — stable per id however
    the node count grows.  ``range`` splits ``[0, num_nodes)`` into
    contiguous near-equal ranges (the same :func:`numpy.linspace`
    bounds as :func:`repro.parallel.walks.shard_indices`); ownership is
    a function of the *current* node count, so a growing store
    rebalances naturally at the next publish.  Both sides of the wire
    (publisher and worker) recompute ownership from this same plan, so
    they can never disagree.
    """

    num_shards: int
    strategy: str = "hash"

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ServingError(
                f"num_shards must be >= 1, got {self.num_shards}"
            )
        if self.strategy not in PLAN_CHOICES:
            raise ServingError(
                f"unknown shard strategy {self.strategy!r}; options: "
                f"{list(PLAN_CHOICES)}"
            )

    # ------------------------------------------------------------------
    def _bounds(self, num_nodes: int) -> np.ndarray:
        return np.linspace(0, num_nodes,
                           self.num_shards + 1).astype(np.int64)

    def shard_of_many(self, nodes: np.ndarray, num_nodes: int) -> np.ndarray:
        """Owning shard id for every node in ``nodes`` (vectorized)."""
        nodes = np.asarray(nodes, dtype=np.int64)
        if self.strategy == "hash":
            with np.errstate(over="ignore"):
                mixed = nodes.astype(np.uint64) * _GOLDEN
            return ((mixed >> np.uint64(33))
                    % np.uint64(self.num_shards)).astype(np.int64)
        bounds = self._bounds(num_nodes)
        return (np.searchsorted(bounds, nodes, side="right") - 1
                ).astype(np.int64)

    def shard_of(self, node: int, num_nodes: int) -> int:
        """Owning shard id of one node."""
        return int(self.shard_of_many(
            np.asarray([node], dtype=np.int64), num_nodes)[0])

    def owned_ids(self, shard: int, num_nodes: int) -> np.ndarray:
        """Global node ids owned by ``shard``, ascending.

        Ascending order is load-bearing: a slice built from it keeps
        local row order equal to global id order, which is what lets a
        shard's local lower-row tie-break stand in for the oracle's
        lower-*id* tie-break.
        """
        if not 0 <= shard < self.num_shards:
            raise ServingError(
                f"shard {shard} out of range [0, {self.num_shards})"
            )
        if self.strategy == "range":
            bounds = self._bounds(num_nodes)
            return np.arange(bounds[shard], bounds[shard + 1],
                             dtype=np.int64)
        everyone = np.arange(num_nodes, dtype=np.int64)
        return everyone[self.shard_of_many(everyone, num_nodes) == shard]


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class _WorkerConfig:
    """Picklable per-worker knobs (derived from ShardedServingConfig)."""

    metric: str
    block_size: int
    cache_size: int
    index: str
    ann: IvfConfig | None
    keep_versions: int


class _ShardVersion:
    """One installed slice version inside a worker."""

    __slots__ = ("store", "index", "ivf", "ids", "num_nodes", "lru")

    def __init__(self, store: EmbeddingStore | None,
                 index: RecommendationIndex | None, ivf: IvfIndex | None,
                 ids: np.ndarray, num_nodes: int) -> None:
        self.store = store
        self.index = index
        self.ivf = ivf
        self.ids = ids
        self.num_nodes = num_nodes
        self.lru: OrderedDict[tuple[int, int], TopK] = OrderedDict()


def _local_row(sv: _ShardVersion, node: int) -> int:
    """Local row of global ``node`` in this shard's slice, or -1."""
    pos = int(np.searchsorted(sv.ids, node))
    if pos < len(sv.ids) and int(sv.ids[pos]) == node:
        return pos
    return -1


class _WorkerState:
    """Everything a shard worker holds between commands."""

    def __init__(self, shard_id: int, plan: ShardPlan,
                 cfg: _WorkerConfig) -> None:
        self.shard_id = shard_id
        self.plan = plan
        self.cfg = cfg
        self.versions: OrderedDict[int, _ShardVersion] = OrderedDict()

    # -- commands ------------------------------------------------------
    def _resolve(self, version: int) -> _ShardVersion:
        sv = self.versions.get(version)
        if sv is None:
            raise _StaleVersionError(
                f"shard {self.shard_id} no longer holds version {version}"
            )
        return sv

    def install(self, version: int, generation: int, num_nodes: int,
                spec: SharedArraySpec | None) -> bool:
        ids = self.plan.owned_ids(self.shard_id, num_nodes)
        if spec is None or len(ids) == 0:
            sv = _ShardVersion(None, None, None, ids, num_nodes)
        else:
            shared = SharedArray.attach(spec)
            try:
                local = np.array(shared.array, dtype=np.float64, copy=True)
            finally:
                shared.close()
            if local.shape[0] != len(ids):
                raise ServingError(
                    f"shard {self.shard_id} slice has {local.shape[0]} "
                    f"rows, plan owns {len(ids)}"
                )
            store = EmbeddingStore()
            snapshot = store.publish(local, generation)
            index = RecommendationIndex(
                store, cache_size=0, block_size=self.cfg.block_size,
                metric=self.cfg.metric,
            )
            ivf = None
            if self.cfg.index == "ivf":
                ann = self.cfg.ann or IvfConfig()
                if len(ids) >= ann.min_index_nodes:
                    ivf = IvfIndex.build(snapshot, ann, self.cfg.metric)
            sv = _ShardVersion(store, index, ivf, ids, num_nodes)
        self.versions[version] = sv
        while len(self.versions) > max(1, self.cfg.keep_versions):
            self.versions.popitem(last=False)
        return True

    def topk(self, version: int, node: int, k: int, vec: np.ndarray
             ) -> tuple[np.ndarray, np.ndarray, bool]:
        sv = self._resolve(version)
        if sv.store is None:  # empty shard: nothing to contribute
            return (np.empty(0, dtype=np.int64),
                    np.empty(0, dtype=np.float64), False)
        key = (int(node), int(k))
        hit = sv.lru.get(key)
        if hit is not None:
            sv.lru.move_to_end(key)
            return hit[0], hit[1], True
        exclude_row = _local_row(sv, node)
        row_ids = None
        if sv.ivf is not None:
            candidates, _probed = sv.ivf.candidate_rows_for(vec)
            available = len(candidates)
            if exclude_row >= 0:
                pos = int(np.searchsorted(candidates, exclude_row))
                if pos < available and int(candidates[pos]) == exclude_row:
                    available -= 1
            local_n = len(sv.ids)
            k_eff = min(k, local_n - 1 if exclude_row >= 0 else local_n)
            if available >= k_eff:
                row_ids = candidates
        local_ids, scores = sv.index.top_k_vector(
            vec, k, exclude_row=exclude_row, row_ids=row_ids,
        )
        gids = sv.ids[local_ids]
        gids.setflags(write=False)
        if self.cfg.cache_size > 0:
            sv.lru[key] = (gids, scores)
            while len(sv.lru) > self.cfg.cache_size:
                sv.lru.popitem(last=False)
        return gids, scores, False

    def vector(self, version: int, node: int) -> np.ndarray:
        sv = self._resolve(version)
        row = -1 if sv.store is None else _local_row(sv, node)
        if row < 0:
            raise ServingError(
                f"node {node} is not owned by shard {self.shard_id}"
            )
        return np.array(sv.store.snapshot().matrix[row], copy=True)

    def score(self, version: int, src: int, dst: int | None,
              dst_vec: np.ndarray | None) -> float:
        sv = self._resolve(version)
        row = -1 if sv.store is None else _local_row(sv, src)
        if row < 0:
            raise ServingError(
                f"node {src} is not owned by shard {self.shard_id}"
            )
        matrix = sv.store.snapshot().matrix
        if dst_vec is None:
            peer_row = _local_row(sv, int(dst))
            if peer_row < 0:
                raise ServingError(
                    f"node {dst} is not owned by shard {self.shard_id}"
                )
            dst_vec = matrix[peer_row]
        # Same einsum as ServingFrontend._process_scores, so a sharded
        # link score is bit-identical to the single-process one.
        return float(np.einsum("bd,bd->b", matrix[row][None, :],
                               np.asarray(dst_vec)[None, :])[0])


def _shard_worker_main(conn, shard_id: int, plan: ShardPlan,
                       cfg: _WorkerConfig) -> None:
    """Worker entry point: serve commands until ``stop`` or EOF.

    Replies are ``(request_id, ok, payload, seconds)``; a failure
    payload is ``(kind, message)`` with ``kind`` either ``"stale"``
    (router refreshes its version and retries) or ``"error"``.
    """
    state = _WorkerState(shard_id, plan, cfg)
    handlers = {
        "install": state.install,
        "topk": state.topk,
        "vector": state.vector,
        "score": state.score,
        "ping": lambda: shard_id,
    }
    while True:
        try:
            request_id, op, payload = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        start = time.perf_counter()
        if op == "stop":
            try:
                conn.send((request_id, True, None, 0.0))
            except (OSError, BrokenPipeError):
                pass
            break
        try:
            handler = handlers[op]
            result = handler(*payload) if payload is not None else handler()
            reply = (request_id, True, result,
                     time.perf_counter() - start)
        except _StaleVersionError as exc:
            reply = (request_id, False, ("stale", str(exc)),
                     time.perf_counter() - start)
        except Exception as exc:
            reply = (request_id, False,
                     ("error", f"{type(exc).__name__}: {exc}"),
                     time.perf_counter() - start)
        try:
            conn.send(reply)
        except (OSError, BrokenPipeError):
            break
    try:
        conn.close()
    except OSError:
        pass


# ---------------------------------------------------------------------------
# Router side: one client per worker
# ---------------------------------------------------------------------------
class _Reply:
    """One in-flight worker reply (event-resolved by the receiver)."""

    __slots__ = ("_event", "_ok", "_payload", "_seconds", "_error")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._ok = False
        self._payload = None
        self._seconds = 0.0
        self._error: ServingError | None = None

    def _resolve(self, ok: bool, payload, seconds: float) -> None:
        self._ok = ok
        self._payload = payload
        self._seconds = seconds
        self._event.set()

    def _fail(self, error: ServingError) -> None:
        self._error = error
        self._event.set()

    def result(self, timeout: float | None = None):
        """``(payload, worker_seconds)``; raises on failure/timeout."""
        if not self._event.wait(timeout):
            raise ServingError(
                f"shard request timed out after {timeout}s"
            )
        if self._error is not None:
            raise self._error
        if not self._ok:
            kind, message = self._payload
            if kind == "stale":
                raise _StaleVersionError(message)
            raise ServingError(f"shard worker error: {message}")
        return self._payload, self._seconds


class EmbeddingShard:
    """Router-side handle to one shard worker process.

    Wraps the command pipe with request-id multiplexing: any router
    thread may issue requests concurrently; a dedicated receiver thread
    dispatches replies.  A dead worker (EOF on the pipe, failed send)
    flips :attr:`alive` and fails every pending request with
    :class:`_ShardDownError`, which is what the router's degraded mode
    keys on.
    """

    def __init__(self, shard_id: int, process, conn) -> None:
        self.shard_id = shard_id
        self._process = process
        self._conn = conn
        self._send_lock = threading.Lock()
        self._pending_lock = threading.Lock()
        self._pending: dict[int, _Reply] = {}
        self._next_id = 0
        self._alive = True
        self._receiver = threading.Thread(
            target=self._recv_loop, daemon=True,
            name=f"shard-recv-{shard_id}",
        )
        self._receiver.start()

    @property
    def alive(self) -> bool:
        return self._alive

    # ------------------------------------------------------------------
    def request_async(self, op: str, payload) -> _Reply:
        reply = _Reply()
        if not self._alive:
            reply._fail(_ShardDownError(
                f"shard {self.shard_id} worker is down"))
            return reply
        with self._pending_lock:
            self._next_id += 1
            request_id = self._next_id
            self._pending[request_id] = reply
        try:
            with self._send_lock:
                self._conn.send((request_id, op, payload))
        except (OSError, ValueError, BrokenPipeError):
            self._mark_dead()
        return reply

    def request(self, op: str, payload, timeout: float | None = None):
        return self.request_async(op, payload).result(timeout)

    # ------------------------------------------------------------------
    def _recv_loop(self) -> None:
        while True:
            try:
                request_id, ok, payload, seconds = self._conn.recv()
            except (EOFError, OSError, ValueError):
                self._mark_dead()
                return
            with self._pending_lock:
                reply = self._pending.pop(request_id, None)
            if reply is not None:
                reply._resolve(ok, payload, seconds)

    def _mark_dead(self) -> None:
        self._alive = False
        with self._pending_lock:
            pending, self._pending = self._pending, {}
        for reply in pending.values():
            reply._fail(_ShardDownError(
                f"shard {self.shard_id} worker is down"))

    # ------------------------------------------------------------------
    def kill(self) -> None:
        """Hard-kill the worker (tests / chaos): no goodbye message."""
        try:
            self._process.kill()
        except Exception:
            pass
        self._process.join(5.0)
        self._mark_dead()

    def stop(self, timeout: float = 5.0) -> None:
        """Graceful shutdown; escalates to terminate/kill on a hang."""
        if self._alive:
            try:
                self.request_async("stop", None)
            except Exception:
                pass
        self._process.join(timeout)
        if self._process.is_alive():
            self._process.terminate()
            self._process.join(1.0)
        if self._process.is_alive():  # pragma: no cover - last resort
            self._process.kill()
            self._process.join(1.0)
        self._mark_dead()
        try:
            self._conn.close()
        except OSError:
            pass


# ---------------------------------------------------------------------------
# Router
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ShardedServingConfig:
    """Knobs of the sharded tier (router + every worker).

    ``index``/``ann`` select each shard's local index exactly like
    :class:`~repro.serving.frontend.ServingConfig` does for the
    single-process frontend (per-shard IVF indexes are built at install
    time against the shard's slice).  ``keep_versions`` is how many
    installed versions each worker retains — 2 lets queries routed just
    before a publish finish against the version they were routed under.
    ``vector_cache_size`` bounds the router's per-version query-vector
    LRU; ``cache_size`` bounds each worker's answered-sub-query LRU.
    """

    default_k: int = 10
    metric: str = "dot"
    block_size: int = 8192
    cache_size: int = 4096
    index: str = "exact"
    ann: IvfConfig | None = None
    keep_versions: int = 2
    vector_cache_size: int = 4096
    request_timeout: float = 60.0

    def __post_init__(self) -> None:
        if self.default_k < 1:
            raise ServingError(
                f"default_k must be >= 1, got {self.default_k}")
        if self.metric not in METRIC_CHOICES:
            raise ServingError(
                f"unknown metric {self.metric!r}; options: "
                f"{list(METRIC_CHOICES)}")
        if self.block_size < 1:
            raise ServingError(
                f"block_size must be >= 1, got {self.block_size}")
        if self.cache_size < 0:
            raise ServingError(
                f"cache_size must be >= 0, got {self.cache_size}")
        if self.index not in INDEX_CHOICES:
            raise ServingError(
                f"unknown index {self.index!r}; options: "
                f"{list(INDEX_CHOICES)}")
        if self.keep_versions < 1:
            raise ServingError(
                f"keep_versions must be >= 1, got {self.keep_versions}")
        if self.vector_cache_size < 0:
            raise ServingError(
                "vector_cache_size must be >= 0, got "
                f"{self.vector_cache_size}")
        if self.request_timeout <= 0:
            raise ServingError(
                f"request_timeout must be > 0, got {self.request_timeout}")


@dataclass(frozen=True)
class _VersionInfo:
    """The router's currently served (version, id-space, generation)."""

    version: int
    num_nodes: int
    generation: int


class ShardedFrontend:
    """Scatter/gather query router over :class:`EmbeddingShard` workers."""

    def __init__(self, plan: ShardPlan,
                 config: ShardedServingConfig | None = None,
                 mp_context=None) -> None:
        self.plan = plan
        self.config = config or ShardedServingConfig()
        self._ctx = mp_context or _mp_context()
        self._clients: list[EmbeddingShard] = []
        self._started = False
        self._closed = False
        self._publish_lock = threading.Lock()
        self._version_counter = 0
        self._current: _VersionInfo | None = None
        self._vector_lock = threading.Lock()
        self._vector_cache: OrderedDict[tuple[int, int], np.ndarray] = (
            OrderedDict())

    # ------------------------------------------------------------------
    def start(self) -> "ShardedFrontend":
        """Spawn the shard workers (idempotent); returns self."""
        if self._started:
            return self
        cfg = self.config
        worker_cfg = _WorkerConfig(
            metric=cfg.metric, block_size=cfg.block_size,
            cache_size=cfg.cache_size, index=cfg.index, ann=cfg.ann,
            keep_versions=cfg.keep_versions,
        )
        # Start the parent's shared-memory resource tracker *before*
        # forking, so every worker inherits it.  A worker forked first
        # would lazily start a private tracker at its first publish
        # attach, and that tracker would warn about — and try to
        # re-unlink — blocks the publisher already cleaned up.
        resource_tracker.ensure_running()
        for shard_id in range(self.plan.num_shards):
            parent_conn, child_conn = self._ctx.Pipe(duplex=True)
            process = self._ctx.Process(
                target=_shard_worker_main,
                args=(child_conn, shard_id, self.plan, worker_cfg),
                daemon=True, name=f"embedding-shard-{shard_id}",
            )
            process.start()
            # Drop the parent's copy of the child end *before* spawning
            # the next worker, so a dead worker reads as EOF and later
            # workers never inherit this pipe.
            child_conn.close()
            self._clients.append(
                EmbeddingShard(shard_id, process, parent_conn))
        self._started = True
        # One synchronous round-trip per worker: surface spawn failures
        # here, not on the first query.
        for client in self._clients:
            client.request("ping", None, timeout=cfg.request_timeout)
        return self

    def close(self) -> None:
        """Stop every worker process (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for client in self._clients:
            client.stop()

    def __enter__(self) -> "ShardedFrontend":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return self.plan.num_shards

    @property
    def alive_shards(self) -> int:
        """Workers currently able to answer."""
        return sum(1 for client in self._clients if client.alive)

    def _require_current(self) -> _VersionInfo:
        info = self._current
        if info is None:
            raise ServingError(
                "no embeddings published to the sharded tier yet; "
                "publish through a ShardedPublisher first"
            )
        return info

    @property
    def num_nodes(self) -> int:
        """Nodes in the served version (the load generator's id space)."""
        return self._require_current().num_nodes

    @property
    def version(self) -> int:
        """Served version (0 before the first publish)."""
        info = self._current
        return info.version if info is not None else 0

    @property
    def generation(self) -> int:
        """Served generation (-1 before the first publish)."""
        info = self._current
        return info.generation if info is not None else -1

    def kill_shard(self, shard_id: int) -> None:
        """Hard-kill one worker (tests / chaos drills)."""
        self._clients[shard_id].kill()

    # ------------------------------------------------------------------
    def _install(self, version: int, num_nodes: int,
                 generation: int) -> None:
        """Flip the served version (publisher-only, under its lock)."""
        self._version_counter = version
        self._current = _VersionInfo(version, num_nodes, generation)

    def _fetch_vector(self, info: _VersionInfo, node: int) -> np.ndarray:
        """The query vector of ``node`` under ``info`` (router-cached)."""
        rec = get_recorder()
        key = (info.version, node)
        with self._vector_lock:
            hit = self._vector_cache.get(key)
            if hit is not None:
                self._vector_cache.move_to_end(key)
        if hit is not None:
            rec.counter("serving.shard.vector_cache_hits")
            return hit
        shard = self.plan.shard_of(node, info.num_nodes)
        client = self._clients[shard]
        if not client.alive:
            raise ServingError(
                f"cannot fetch the query vector of node {node}: owning "
                f"shard {shard} is down and the vector is not cached"
            )
        vector, _seconds = client.request(
            "vector", (info.version, node),
            timeout=self.config.request_timeout,
        )
        rec.counter("serving.shard.vector_fetches")
        if self.config.vector_cache_size > 0:
            with self._vector_lock:
                self._vector_cache[key] = vector
                while len(self._vector_cache) > self.config.vector_cache_size:
                    self._vector_cache.popitem(last=False)
        return vector

    def _with_stale_retry(self, fn):
        """Run ``fn`` once more under the refreshed version on staleness.

        A worker only drops a version after ``keep_versions`` newer
        publishes landed, so one retry against the *new* current
        version always finds installed slices (the publisher flips the
        router's version last).
        """
        try:
            return fn()
        except _StaleVersionError:
            get_recorder().counter("serving.shard.stale_retries")
            try:
                return fn()
            except _StaleVersionError as exc:
                raise ServingError(
                    f"shard versions churned during retry: {exc}"
                ) from exc

    # ------------------------------------------------------------------
    def top_k(self, node: int, k: int | None = None,
              timeout: float | None = None) -> TopK:
        """Top-``k`` nodes for ``node``, best first — the scatter/gather.

        Bit-identical to the single-process oracle while all shards
        live; with dead shards the merge covers the surviving slices
        and the query counts as ``serving.shard.degraded_queries``.
        """
        rec = get_recorder()
        start = time.monotonic()
        result = self._with_stale_retry(
            lambda: self._top_k_once(int(node), k, timeout))
        if rec.enabled:
            rec.counter("serving.shard.requests.topk")
            rec.observe("serving.shard.latency.topk_s",
                        time.monotonic() - start)
        return result

    def _top_k_once(self, node: int, k: int | None,
                    timeout: float | None) -> TopK:
        k = self.config.default_k if k is None else int(k)
        if k < 1:
            raise ServingError(f"k must be >= 1, got {k}")
        info = self._require_current()
        if not 0 <= node < info.num_nodes:
            raise ServingError(
                f"node {node} out of range [0, {info.num_nodes})"
            )
        timeout = self.config.request_timeout if timeout is None else timeout
        rec = get_recorder()
        start = time.monotonic()
        vector = self._fetch_vector(info, node)
        pending = [
            (client, client.request_async(
                "topk", (info.version, node, k, vector)))
            for client in self._clients if client.alive
        ]
        replies: list[tuple[int, tuple, float]] = []
        stale: _StaleVersionError | None = None
        for client, reply in pending:
            try:
                payload, seconds = reply.result(timeout)
                replies.append((client.shard_id, payload, seconds))
            except _StaleVersionError as exc:
                stale = exc
            except _ShardDownError:
                pass  # died mid-gather: degrade below
        if stale is not None:
            raise stale
        if not replies:
            raise ServingError(
                "top-k gather failed: no shard worker answered"
            )
        wall = time.monotonic() - start
        merged = self._merge_topk(info, k, replies)
        if rec.enabled:
            self._record_gather(rec, replies, wall)
        return merged

    def _merge_topk(self, info: _VersionInfo, k: int,
                    replies: list[tuple[int, tuple, float]]) -> TopK:
        """Merge per-shard local top-k pools under the oracle's order.

        Any row in the true global top-k is inside its own shard's
        local top-k (at most k rows of that shard precede it in the
        total order), so concatenating the pools and re-sorting by
        (score desc, lower global id) reproduces the oracle exactly.
        """
        pool_ids = np.concatenate(
            [payload[0] for _sid, payload, _s in replies])
        pool_scores = np.concatenate(
            [payload[1] for _sid, payload, _s in replies])
        k_eff = min(k, info.num_nodes - 1, len(pool_ids))
        order = np.lexsort((pool_ids, -pool_scores))[:k_eff]
        ids = pool_ids[order].copy()
        scores = pool_scores[order].copy()
        ids.setflags(write=False)
        scores.setflags(write=False)
        return ids, scores

    def _record_gather(self, rec, replies, wall: float) -> None:
        rec.observe("serving.shard.gather_fanin", len(replies))
        slowest = 0.0
        for shard_id, payload, seconds in replies:
            rec.counter(f"serving.shard.{shard_id}.requests")
            rec.observe(f"serving.shard.{shard_id}.seconds", seconds)
            slowest = max(slowest, seconds)
            if len(payload) > 2 and payload[2]:
                rec.counter("serving.shard.cache_hits")
        rec.observe("serving.shard.router_overhead_s",
                    max(0.0, wall - slowest))
        if len(replies) < len(self._clients):
            rec.counter("serving.shard.degraded_queries")

    # ------------------------------------------------------------------
    def score_link(self, src: int, dst: int,
                   timeout: float | None = None) -> float:
        """Similarity score of ``(src, dst)``, routed to an owning shard.

        Served by ``src``'s shard when it is up (``dst``'s vector ships
        along unless the pair is co-located), by ``dst``'s shard —
        scores are symmetric — when only that one survives.
        """
        rec = get_recorder()
        start = time.monotonic()
        result = self._with_stale_retry(
            lambda: self._score_once(int(src), int(dst), timeout))
        if rec.enabled:
            rec.counter("serving.shard.requests.score")
            rec.observe("serving.shard.latency.score_s",
                        time.monotonic() - start)
        return result

    def _score_once(self, src: int, dst: int,
                    timeout: float | None) -> float:
        info = self._require_current()
        for node in (src, dst):
            if not 0 <= node < info.num_nodes:
                raise ServingError(
                    f"node {node} out of range [0, {info.num_nodes})"
                )
        timeout = self.config.request_timeout if timeout is None else timeout
        src_shard = self.plan.shard_of(src, info.num_nodes)
        dst_shard = self.plan.shard_of(dst, info.num_nodes)
        if self._clients[src_shard].alive:
            anchor, anchor_shard, peer, peer_shard = (
                src, src_shard, dst, dst_shard)
        elif self._clients[dst_shard].alive:
            anchor, anchor_shard, peer, peer_shard = (
                dst, dst_shard, src, src_shard)
        else:
            raise ServingError(
                f"link score ({src}, {dst}) unservable: shards "
                f"{src_shard} and {dst_shard} are both down"
            )
        if peer_shard == anchor_shard:
            payload = (info.version, anchor, peer, None)
        else:
            payload = (info.version, anchor, None,
                       self._fetch_vector(info, peer))
        score, seconds = self._clients[anchor_shard].request(
            "score", payload, timeout=timeout)
        rec = get_recorder()
        if rec.enabled:
            rec.counter(f"serving.shard.{anchor_shard}.requests")
            rec.observe(f"serving.shard.{anchor_shard}.seconds", seconds)
        return float(score)


# ---------------------------------------------------------------------------
# Publisher
# ---------------------------------------------------------------------------
class ShardedPublisher:
    """Slices snapshots per shard and installs them version-atomically.

    Every publish: slice the matrix by the frontend's plan, copy each
    slice into a :class:`~repro.parallel.shared_array.SharedArray`
    block, install all slices on their workers under one new version,
    and only after every live worker acked flip the router's served
    version.  Queries are tagged with the version they were routed
    under and workers retain ``keep_versions`` installed versions, so a
    gather can never pair one shard's new slice with another's old one.

    :meth:`attach` subscribes to an :class:`EmbeddingStore` so an
    :class:`~repro.tasks.incremental.IncrementalEmbedder` (or the
    stream controller) publishing there fans out here automatically —
    the same hook the ANN manager uses.
    """

    def __init__(self, frontend: ShardedFrontend,
                 timeout: float = 120.0) -> None:
        if timeout <= 0:
            raise ServingError(f"timeout must be > 0, got {timeout}")
        self.frontend = frontend
        self._timeout = timeout
        self._attached: list[tuple[EmbeddingStore, object]] = []

    # ------------------------------------------------------------------
    def publish(self, matrix: np.ndarray, generation: int = 0) -> int:
        """Install ``matrix`` across every shard; returns the version."""
        frontend = self.frontend
        if not frontend._started:
            raise ServingError(
                "sharded frontend is not started; enter its context "
                "(or call start()) before publishing"
            )
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[0] < 1:
            raise ServingError(
                "published embeddings must be a non-empty 2-D matrix, "
                f"got shape {matrix.shape}"
            )
        start = time.perf_counter()
        with frontend._publish_lock:
            current = frontend._current
            if current is not None and generation < current.generation:
                raise ServingError(
                    f"stale publish: generation {generation} is older "
                    f"than the served generation {current.generation}"
                )
            version = frontend._version_counter + 1
            num_nodes = matrix.shape[0]
            blocks: list[SharedArray] = []
            try:
                pending = []
                for client in frontend._clients:
                    if not client.alive:
                        continue
                    ids = frontend.plan.owned_ids(
                        client.shard_id, num_nodes)
                    if len(ids) == 0:
                        spec = None
                    else:
                        block = SharedArray.create(matrix[ids])
                        blocks.append(block)
                        spec = block.spec
                    pending.append(client.request_async(
                        "install", (version, generation, num_nodes, spec)))
                if not pending:
                    raise ServingError(
                        "sharded publish failed: every worker is down"
                    )
                for reply in pending:
                    try:
                        reply.result(self._timeout)
                    except _ShardDownError:
                        # Died mid-install; the tier serves degraded
                        # from the surviving shards.
                        pass
            finally:
                for block in blocks:
                    block.close()
            # The flip: queries issued from here on are tagged with the
            # fully-installed new version.
            frontend._install(version, num_nodes, int(generation))
        rec = get_recorder()
        rec.counter("serving.shard.publishes")
        rec.gauge("serving.shard.version", version)
        rec.gauge("serving.shard.generation", int(generation))
        rec.observe("serving.shard.install_s",
                    time.perf_counter() - start)
        return version

    # ------------------------------------------------------------------
    def attach(self, store: EmbeddingStore) -> None:
        """Fan out every future publish of ``store`` to the shards.

        The store's current snapshot (if any) is published immediately,
        so attaching to a warm store brings the tier up to date.
        """

        def _on_publish(snapshot) -> None:
            self.publish(snapshot.matrix, snapshot.generation)

        store.subscribe(_on_publish)
        self._attached.append((store, _on_publish))
        if not store.empty:
            snapshot = store.snapshot()
            self.publish(snapshot.matrix, snapshot.generation)

    def detach(self) -> None:
        """Unsubscribe from every attached store (idempotent)."""
        attached, self._attached = self._attached, []
        for store, callback in attached:
            store.unsubscribe(callback)
