"""Sharded scatter/gather serving: the embedding space across processes.

Everything up to PR 7 serves from one process; the "millions of users"
scenario needs the embedding space *partitioned* across real processes
with a router in front — the same ingest → train → publish → route
pipeline that "Towards Real-Time Temporal Graph Learning" overlaps
across CPU/GPU stages, here spread across shard workers.  Five pieces:

- :class:`ShardPlan` — the deterministic partitioner.  ``hash`` spreads
  node ids via a Fibonacci mixing hash (load-balanced, stable per id);
  ``range`` assigns contiguous id ranges (locality-preserving, and
  re-balanced automatically when the node count grows between
  publishes).
- :class:`EmbeddingShard` workers — ``replication_factor`` processes
  per shard, each owning a shard-local
  :class:`~repro.serving.store.EmbeddingStore` +
  :class:`~repro.serving.index.RecommendationIndex` (exact, or a
  per-shard :class:`~repro.serving.ann.IvfIndex`) plus an LRU of
  answered sub-queries.  Slices arrive through
  :class:`~repro.parallel.shared_array.SharedArray` blocks, not the
  command pipe; sibling replicas attach the same block.
- :class:`ShardedFrontend` — the router.  ``top_k`` is a
  scatter/gather: fetch the query vector from the owning shard (router
  LRU caches it per version), broadcast it to one replica per shard
  (round-robin), take each shard's local top-k, merge with the
  documented (score desc, lower global id) tie-break —
  **bit-identical** to the single-process oracle.  ``score_link``
  routes to an owning shard of one endpoint and ships the other
  endpoint's vector when the pair spans shards.  A dead replica fails
  over to a live sibling transparently (``serving.shard.replica
  .failovers``); only when *every* replica of a shard is gone does the
  router degrade — surviving shards still answer and every partial
  gather is counted (``serving.shard.degraded_queries``).
- :class:`ShardedPublisher` — slices each new snapshot per shard,
  installs every slice on every live replica under one new version,
  and only then flips the router's served version.  Queries carry the
  version they were routed under and workers retain the previous
  version, so **no gather can ever mix two versions across shards**
  (the sharded analogue of the store's atomic snapshot swap).
- :meth:`ShardedFrontend.rebalance` — live migration between
  :class:`ShardPlan`\\ s without a stop-the-world republish: spawn the
  new worker set, install the served version's slices under the new
  plan, flip the routing table in one reference assignment, drain the
  queries still in flight under the old plan, retire the old workers.
  A query routes entirely against one table snapshot, so a gather can
  never combine old-plan and new-plan slices.

Worker-internal recorder metrics (per-shard index counters, GEMM rows,
ANN counters) are aggregated back to the router by
:meth:`ShardedFrontend.worker_metrics` via a ``metrics`` op and land in
the ambient recorder under ``serving.shard.workers.<name>``.

Known trade-off: each worker handles its command pipe serially, so a
publish (slice install + optional IVF build) briefly queues behind /
ahead of that shard's sub-queries — availability is bounded by install
time, never correctness.

Oracle harness: ``tests/test_serving_shards.py`` and
``tests/test_serving_replication.py`` (``pytest -m shards``); capacity
and availability curves: ``benchmarks/bench_serving_shards.py``.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from multiprocessing import resource_tracker

import numpy as np

from repro.errors import ServingError
from repro.observability import Recorder, get_recorder, use_recorder
from repro.parallel.shared_array import SharedArray, SharedArraySpec
from repro.parallel.supervisor import _mp_context
from repro.serving.ann import INDEX_CHOICES, IvfConfig, IvfIndex
from repro.serving.index import METRIC_CHOICES, RecommendationIndex, TopK
from repro.serving.store import EmbeddingStore

PLAN_CHOICES = ("hash", "range")

#: Knuth's 64-bit golden-ratio multiplier; mixes consecutive node ids
#: into well-spread shard assignments.
_GOLDEN = np.uint64(0x9E3779B97F4A7C15)


class _ShardDownError(ServingError):
    """The target worker process is dead (the router fails over to a
    sibling replica, then degrades the gather)."""


class _StaleVersionError(ServingError):
    """The worker already dropped the requested version (router retries)."""


# ---------------------------------------------------------------------------
# Partitioner
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ShardPlan:
    """Deterministic node-id → shard assignment.

    ``hash`` mixes each id with the 64-bit golden-ratio multiplier and
    takes the high bits modulo ``num_shards`` — stable per id however
    the node count grows.  ``range`` splits ``[0, num_nodes)`` into
    contiguous near-equal ranges (the same :func:`numpy.linspace`
    bounds as :func:`repro.parallel.walks.shard_indices`); ownership is
    a function of the *current* node count, so a growing store
    rebalances naturally at the next publish.  Both sides of the wire
    (publisher and worker) recompute ownership from this same plan, so
    they can never disagree.
    """

    num_shards: int
    strategy: str = "hash"

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ServingError(
                f"num_shards must be >= 1, got {self.num_shards}"
            )
        if self.strategy not in PLAN_CHOICES:
            raise ServingError(
                f"unknown shard strategy {self.strategy!r}; options: "
                f"{list(PLAN_CHOICES)}"
            )

    # ------------------------------------------------------------------
    def _bounds(self, num_nodes: int) -> np.ndarray:
        return np.linspace(0, num_nodes,
                           self.num_shards + 1).astype(np.int64)

    def shard_of_many(self, nodes: np.ndarray, num_nodes: int) -> np.ndarray:
        """Owning shard id for every node in ``nodes`` (vectorized)."""
        nodes = np.asarray(nodes, dtype=np.int64)
        if self.strategy == "hash":
            with np.errstate(over="ignore"):
                mixed = nodes.astype(np.uint64) * _GOLDEN
            return ((mixed >> np.uint64(33))
                    % np.uint64(self.num_shards)).astype(np.int64)
        bounds = self._bounds(num_nodes)
        return (np.searchsorted(bounds, nodes, side="right") - 1
                ).astype(np.int64)

    def shard_of(self, node: int, num_nodes: int) -> int:
        """Owning shard id of one node."""
        return int(self.shard_of_many(
            np.asarray([node], dtype=np.int64), num_nodes)[0])

    def owned_ids(self, shard: int, num_nodes: int) -> np.ndarray:
        """Global node ids owned by ``shard``, ascending.

        Ascending order is load-bearing: a slice built from it keeps
        local row order equal to global id order, which is what lets a
        shard's local lower-row tie-break stand in for the oracle's
        lower-*id* tie-break.
        """
        if not 0 <= shard < self.num_shards:
            raise ServingError(
                f"shard {shard} out of range [0, {self.num_shards})"
            )
        if self.strategy == "range":
            bounds = self._bounds(num_nodes)
            return np.arange(bounds[shard], bounds[shard + 1],
                             dtype=np.int64)
        everyone = np.arange(num_nodes, dtype=np.int64)
        return everyone[self.shard_of_many(everyone, num_nodes) == shard]


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class _WorkerConfig:
    """Picklable per-worker knobs (derived from ShardedServingConfig)."""

    metric: str
    block_size: int
    cache_size: int
    index: str
    ann: IvfConfig | None
    keep_versions: int


class _ShardVersion:
    """One installed slice version inside a worker."""

    __slots__ = ("store", "index", "ivf", "ids", "num_nodes", "lru")

    def __init__(self, store: EmbeddingStore | None,
                 index: RecommendationIndex | None, ivf: IvfIndex | None,
                 ids: np.ndarray, num_nodes: int) -> None:
        self.store = store
        self.index = index
        self.ivf = ivf
        self.ids = ids
        self.num_nodes = num_nodes
        self.lru: OrderedDict[tuple[int, int], TopK] = OrderedDict()


def _local_row(sv: _ShardVersion, node: int) -> int:
    """Local row of global ``node`` in this shard's slice, or -1."""
    pos = int(np.searchsorted(sv.ids, node))
    if pos < len(sv.ids) and int(sv.ids[pos]) == node:
        return pos
    return -1


class _WorkerState:
    """Everything a shard worker holds between commands."""

    def __init__(self, shard_id: int, plan: ShardPlan,
                 cfg: _WorkerConfig) -> None:
        self.shard_id = shard_id
        self.plan = plan
        self.cfg = cfg
        self.versions: OrderedDict[int, _ShardVersion] = OrderedDict()

    # -- commands ------------------------------------------------------
    def _resolve(self, version: int) -> _ShardVersion:
        sv = self.versions.get(version)
        if sv is None:
            raise _StaleVersionError(
                f"shard {self.shard_id} no longer holds version {version}"
            )
        return sv

    def install(self, version: int, generation: int, num_nodes: int,
                spec: SharedArraySpec | None) -> bool:
        ids = self.plan.owned_ids(self.shard_id, num_nodes)
        if spec is None or len(ids) == 0:
            sv = _ShardVersion(None, None, None, ids, num_nodes)
        else:
            shared = SharedArray.attach(spec)
            try:
                local = np.array(shared.array, dtype=np.float64, copy=True)
            finally:
                shared.close()
            if local.shape[0] != len(ids):
                raise ServingError(
                    f"shard {self.shard_id} slice has {local.shape[0]} "
                    f"rows, plan owns {len(ids)}"
                )
            store = EmbeddingStore()
            snapshot = store.publish(local, generation)
            index = RecommendationIndex(
                store, cache_size=0, block_size=self.cfg.block_size,
                metric=self.cfg.metric,
            )
            ivf = None
            if self.cfg.index == "ivf":
                ann = self.cfg.ann or IvfConfig()
                if len(ids) >= ann.min_index_nodes:
                    ivf = IvfIndex.build(snapshot, ann, self.cfg.metric)
            sv = _ShardVersion(store, index, ivf, ids, num_nodes)
        self.versions[version] = sv
        while len(self.versions) > max(1, self.cfg.keep_versions):
            self.versions.popitem(last=False)
        return True

    def topk(self, version: int, node: int, k: int, vec: np.ndarray
             ) -> tuple[np.ndarray, np.ndarray, bool]:
        sv = self._resolve(version)
        if sv.store is None:  # empty shard: nothing to contribute
            return (np.empty(0, dtype=np.int64),
                    np.empty(0, dtype=np.float64), False)
        key = (int(node), int(k))
        hit = sv.lru.get(key)
        if hit is not None:
            sv.lru.move_to_end(key)
            return hit[0], hit[1], True
        exclude_row = _local_row(sv, node)
        row_ids = None
        if sv.ivf is not None:
            candidates, _probed = sv.ivf.candidate_rows_for(vec)
            available = len(candidates)
            if exclude_row >= 0:
                pos = int(np.searchsorted(candidates, exclude_row))
                if pos < available and int(candidates[pos]) == exclude_row:
                    available -= 1
            local_n = len(sv.ids)
            k_eff = min(k, local_n - 1 if exclude_row >= 0 else local_n)
            if available >= k_eff:
                row_ids = candidates
        local_ids, scores = sv.index.top_k_vector(
            vec, k, exclude_row=exclude_row, row_ids=row_ids,
        )
        gids = sv.ids[local_ids]
        gids.setflags(write=False)
        if self.cfg.cache_size > 0:
            sv.lru[key] = (gids, scores)
            while len(sv.lru) > self.cfg.cache_size:
                sv.lru.popitem(last=False)
        return gids, scores, False

    def vector(self, version: int, node: int) -> np.ndarray:
        sv = self._resolve(version)
        row = -1 if sv.store is None else _local_row(sv, node)
        if row < 0:
            raise ServingError(
                f"node {node} is not owned by shard {self.shard_id}"
            )
        return np.array(sv.store.snapshot().matrix[row], copy=True)

    def score(self, version: int, src: int, dst: int | None,
              dst_vec: np.ndarray | None) -> float:
        sv = self._resolve(version)
        row = -1 if sv.store is None else _local_row(sv, src)
        if row < 0:
            raise ServingError(
                f"node {src} is not owned by shard {self.shard_id}"
            )
        matrix = sv.store.snapshot().matrix
        if dst_vec is None:
            peer_row = _local_row(sv, int(dst))
            if peer_row < 0:
                raise ServingError(
                    f"node {dst} is not owned by shard {self.shard_id}"
                )
            dst_vec = matrix[peer_row]
        # Same einsum as ServingFrontend._process_scores, so a sharded
        # link score is bit-identical to the single-process one.
        return float(np.einsum("bd,bd->b", matrix[row][None, :],
                               np.asarray(dst_vec)[None, :])[0])


def _shard_worker_main(conn, shard_id: int, plan: ShardPlan,
                       cfg: _WorkerConfig, fault_plan=None,
                       attempt: int = 0) -> None:
    """Worker entry point: serve commands until ``stop`` or EOF.

    Replies are ``(request_id, ok, payload, seconds)``; a failure
    payload is ``(kind, message)`` with ``kind`` either ``"stale"``
    (router refreshes its version and retries) or ``"error"``.

    The worker runs under its own :class:`~repro.observability
    .Recorder`, so index/ANN/store metrics recorded by shard-local
    components accumulate here instead of vanishing; the ``metrics`` op
    ships the recorder's mergeable state back to the router.

    ``fault_plan``/``attempt`` are only passed on the *respawn* path:
    the ``controlplane.respawn`` site fires here, before the first
    command is served, so a ``crash`` spec kills the replacement worker
    deterministically — the crash-loop drill the control plane's
    circuit breaker is tested against.
    """
    if fault_plan is not None:
        fault_plan.fire("controlplane.respawn", shard=shard_id,
                        attempt=attempt)
    recorder = Recorder()
    state = _WorkerState(shard_id, plan, cfg)
    handlers = {
        "install": state.install,
        "topk": state.topk,
        "vector": state.vector,
        "score": state.score,
        "metrics": recorder.export_state,
        "ping": lambda: shard_id,
    }
    with use_recorder(recorder):
        while True:
            try:
                request_id, op, payload = conn.recv()
            except (EOFError, OSError, KeyboardInterrupt):
                break
            start = time.perf_counter()
            if op == "stop":
                try:
                    conn.send((request_id, True, None, 0.0))
                except (OSError, BrokenPipeError):
                    pass
                break
            try:
                handler = handlers[op]
                result = (handler(*payload) if payload is not None
                          else handler())
                reply = (request_id, True, result,
                         time.perf_counter() - start)
            except _StaleVersionError as exc:
                reply = (request_id, False, ("stale", str(exc)),
                         time.perf_counter() - start)
            except Exception as exc:
                reply = (request_id, False,
                         ("error", f"{type(exc).__name__}: {exc}"),
                         time.perf_counter() - start)
            try:
                conn.send(reply)
            except (OSError, BrokenPipeError):
                break
    try:
        conn.close()
    except OSError:
        pass


# ---------------------------------------------------------------------------
# Router side: one client per worker
# ---------------------------------------------------------------------------
class _Reply:
    """One in-flight worker reply (event-resolved by the receiver)."""

    __slots__ = ("_event", "_ok", "_payload", "_seconds", "_error")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._ok = False
        self._payload = None
        self._seconds = 0.0
        self._error: ServingError | None = None

    def _resolve(self, ok: bool, payload, seconds: float) -> None:
        self._ok = ok
        self._payload = payload
        self._seconds = seconds
        self._event.set()

    def _fail(self, error: ServingError) -> None:
        self._error = error
        self._event.set()

    def result(self, timeout: float | None = None):
        """``(payload, worker_seconds)``; raises on failure/timeout."""
        if not self._event.wait(timeout):
            raise ServingError(
                f"shard request timed out after {timeout}s"
            )
        if self._error is not None:
            raise self._error
        if not self._ok:
            kind, message = self._payload
            if kind == "stale":
                raise _StaleVersionError(message)
            raise ServingError(f"shard worker error: {message}")
        return self._payload, self._seconds


class EmbeddingShard:
    """Router-side handle to one shard worker process.

    Wraps the command pipe with request-id multiplexing: any router
    thread may issue requests concurrently; a dedicated receiver thread
    dispatches replies.  A dead worker (EOF on the pipe, failed send)
    flips :attr:`alive` and fails every pending request with
    :class:`_ShardDownError`, which is what the router's replica
    failover and degraded mode key on.  ``replica`` distinguishes
    sibling workers of one shard when ``replication_factor > 1``.
    """

    def __init__(self, shard_id: int, process, conn,
                 replica: int = 0) -> None:
        self.shard_id = shard_id
        self.replica = replica
        self._process = process
        self._conn = conn
        self._send_lock = threading.Lock()
        self._pending_lock = threading.Lock()
        self._pending: dict[int, _Reply] = {}
        self._next_id = 0
        self._alive = True
        self._receiver = threading.Thread(
            target=self._recv_loop, daemon=True,
            name=f"shard-recv-{shard_id}.{replica}",
        )
        self._receiver.start()

    @property
    def alive(self) -> bool:
        return self._alive

    # ------------------------------------------------------------------
    def request_async(self, op: str, payload) -> _Reply:
        reply = _Reply()
        if not self._alive:
            reply._fail(_ShardDownError(
                f"shard {self.shard_id} replica {self.replica} worker "
                f"is down"))
            return reply
        with self._pending_lock:
            self._next_id += 1
            request_id = self._next_id
            self._pending[request_id] = reply
        try:
            with self._send_lock:
                self._conn.send((request_id, op, payload))
        except (OSError, ValueError, BrokenPipeError):
            self._mark_dead()
        return reply

    def request(self, op: str, payload, timeout: float | None = None):
        return self.request_async(op, payload).result(timeout)

    # ------------------------------------------------------------------
    def _recv_loop(self) -> None:
        while True:
            try:
                request_id, ok, payload, seconds = self._conn.recv()
            except (EOFError, OSError, ValueError):
                self._mark_dead()
                return
            with self._pending_lock:
                reply = self._pending.pop(request_id, None)
            if reply is not None:
                reply._resolve(ok, payload, seconds)

    def _mark_dead(self) -> None:
        self._alive = False
        with self._pending_lock:
            pending, self._pending = self._pending, {}
        for reply in pending.values():
            reply._fail(_ShardDownError(
                f"shard {self.shard_id} replica {self.replica} worker "
                f"is down"))

    # ------------------------------------------------------------------
    def kill(self) -> None:
        """Hard-kill the worker (tests / chaos): no goodbye message."""
        try:
            self._process.kill()
        except Exception:
            pass
        self._process.join(5.0)
        self._mark_dead()
        # Process death closes the pipe's far end, so the receiver sees
        # EOF; the bounded join keeps chaos drills from leaking threads.
        self._receiver.join(2.0)
        try:
            self._conn.close()
        except OSError:
            pass

    def stop(self, timeout: float = 5.0) -> None:
        """Graceful shutdown; escalates to terminate/kill on a hang.

        Joins the receiver thread (bounded) after the process is down —
        the pipe EOF is what wakes it — and closes the router's pipe
        end, so a stopped shard holds no thread or fd.
        """
        if self._alive:
            try:
                self.request_async("stop", None)
            except Exception:
                pass
        self._process.join(timeout)
        if self._process.is_alive():
            self._process.terminate()
            self._process.join(1.0)
        if self._process.is_alive():  # pragma: no cover - last resort
            self._process.kill()
            self._process.join(1.0)
        self._mark_dead()
        self._receiver.join(2.0)
        try:
            self._conn.close()
        except OSError:
            pass


# ---------------------------------------------------------------------------
# Router
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ShardedServingConfig:
    """Knobs of the sharded tier (router + every worker).

    ``index``/``ann`` select each shard's local index exactly like
    :class:`~repro.serving.frontend.ServingConfig` does for the
    single-process frontend (per-shard IVF indexes are built at install
    time against the shard's slice).  ``replication_factor`` spawns
    that many workers per shard slice: reads fan out to one replica per
    shard (round-robin) and fail over to a live sibling when the chosen
    replica is dead — with R >= 2, killing one replica of every shard
    costs zero degraded queries.  ``keep_versions`` is how many
    installed versions each worker retains — 2 lets queries routed just
    before a publish finish against the version they were routed under.
    ``vector_cache_size`` bounds the router's per-version query-vector
    LRU; ``cache_size`` bounds each worker's answered-sub-query LRU.
    ``stop_timeout`` bounds each worker's graceful-stop wait before
    escalation (close/rebalance stop workers concurrently, so a hung
    worker costs one timeout, not one per worker).
    """

    default_k: int = 10
    metric: str = "dot"
    block_size: int = 8192
    cache_size: int = 4096
    index: str = "exact"
    ann: IvfConfig | None = None
    keep_versions: int = 2
    vector_cache_size: int = 4096
    request_timeout: float = 60.0
    replication_factor: int = 1
    stop_timeout: float = 5.0

    def __post_init__(self) -> None:
        if self.default_k < 1:
            raise ServingError(
                f"default_k must be >= 1, got {self.default_k}")
        if self.metric not in METRIC_CHOICES:
            raise ServingError(
                f"unknown metric {self.metric!r}; options: "
                f"{list(METRIC_CHOICES)}")
        if self.block_size < 1:
            raise ServingError(
                f"block_size must be >= 1, got {self.block_size}")
        if self.cache_size < 0:
            raise ServingError(
                f"cache_size must be >= 0, got {self.cache_size}")
        if self.index not in INDEX_CHOICES:
            raise ServingError(
                f"unknown index {self.index!r}; options: "
                f"{list(INDEX_CHOICES)}")
        if self.keep_versions < 1:
            raise ServingError(
                f"keep_versions must be >= 1, got {self.keep_versions}")
        if self.vector_cache_size < 0:
            raise ServingError(
                "vector_cache_size must be >= 0, got "
                f"{self.vector_cache_size}")
        if self.request_timeout <= 0:
            raise ServingError(
                f"request_timeout must be > 0, got {self.request_timeout}")
        if self.replication_factor < 1:
            raise ServingError(
                "replication_factor must be >= 1, got "
                f"{self.replication_factor}")
        if self.stop_timeout <= 0:
            raise ServingError(
                f"stop_timeout must be > 0, got {self.stop_timeout}")


@dataclass(frozen=True)
class _VersionInfo:
    """The router's currently served (version, id-space, generation)."""

    version: int
    num_nodes: int
    generation: int


@dataclass(frozen=True)
class RebalanceReport:
    """One live rebalance's measurements (returned by
    :meth:`ShardedFrontend.rebalance`)."""

    seconds: float
    install_seconds: float
    drain_seconds: float
    drained: bool
    old_plan: ShardPlan
    new_plan: ShardPlan


class _RoutingTable:
    """One routing epoch: a plan plus its spawned replica groups.

    Every query snapshots the frontend's table once and routes entirely
    against it, so a live rebalance is a single reference flip on the
    frontend: queries still in flight finish under the plan *and*
    worker set they were routed on (tracked by the in-flight counter,
    which the rebalance drains before retiring the old workers), and a
    gather can never combine old-plan and new-plan slices.
    """

    __slots__ = ("plan", "groups", "replication", "_rr", "_cond",
                 "_inflight", "_retired")

    def __init__(self, plan: ShardPlan,
                 groups: list[list[EmbeddingShard]]) -> None:
        self.plan = plan
        self.groups = groups
        self.replication = len(groups[0]) if groups else 1
        # itertools.count.__next__ is atomic under the GIL, so the
        # round-robin cursor needs no lock of its own.
        self._rr = [itertools.count() for _ in groups]
        self._cond = threading.Condition()
        self._inflight = 0
        self._retired = False

    # ------------------------------------------------------------------
    def live_replicas(self, shard_id: int) -> list[EmbeddingShard]:
        """Live workers of ``shard_id``, rotated round-robin.

        The first entry is the chosen replica for this request; the
        rest are the failover order if it dies mid-request.  The cursor
        rotates over the *live* subset, not the full group: a known-dead
        replica is skipped at selection time (counted under
        ``serving.shard.replica.skipped_dead``) instead of soaking up
        every len(group)-th pick and skewing load 2:1 onto whichever
        sibling follows it in the rotation.
        """
        group = self.groups[shard_id]
        if len(group) == 1:
            client = group[0]
            return [client] if client.alive else []
        live = [client for client in group if client.alive]
        if len(live) < len(group):
            rec = get_recorder()
            if rec.enabled:
                rec.counter("serving.shard.replica.skipped_dead",
                            len(group) - len(live))
            if not live:
                return []
        start = next(self._rr[shard_id]) % len(live)
        return live[start:] + live[:start]

    def all_clients(self) -> list[EmbeddingShard]:
        return [client for group in self.groups for client in group]

    # ------------------------------------------------------------------
    def enter(self) -> bool:
        """Register an in-flight query; False once the table retired."""
        with self._cond:
            if self._retired:
                return False
            self._inflight += 1
            return True

    def exit(self) -> None:
        with self._cond:
            self._inflight -= 1
            if self._inflight <= 0:
                self._cond.notify_all()

    def retire(self) -> None:
        """Refuse new entrants (they re-read the frontend's table)."""
        with self._cond:
            self._retired = True

    def wait_drained(self, timeout: float) -> bool:
        """Block until every in-flight query exited, or ``timeout``."""
        deadline = time.monotonic() + timeout
        with self._cond:
            while self._inflight > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._cond.wait(remaining)
            return True


class ShardedFrontend:
    """Scatter/gather query router over :class:`EmbeddingShard` workers."""

    def __init__(self, plan: ShardPlan,
                 config: ShardedServingConfig | None = None,
                 mp_context=None) -> None:
        self._initial_plan = plan
        self.config = config or ShardedServingConfig()
        self._ctx = mp_context or _mp_context()
        self._table: _RoutingTable | None = None
        self._epoch = 0
        self._started = False
        self._closed = False
        self._publish_lock = threading.Lock()
        self._version_counter = 0
        self._current: _VersionInfo | None = None
        self._last_matrix: np.ndarray | None = None
        self._vector_lock = threading.Lock()
        self._vector_cache: OrderedDict[tuple[int, int], np.ndarray] = (
            OrderedDict())

    # ------------------------------------------------------------------
    def _worker_config(self) -> _WorkerConfig:
        cfg = self.config
        return _WorkerConfig(
            metric=cfg.metric, block_size=cfg.block_size,
            cache_size=cfg.cache_size, index=cfg.index, ann=cfg.ann,
            keep_versions=cfg.keep_versions,
        )

    def _spawn_worker(self, plan: ShardPlan, shard_id: int, replica: int,
                      worker_cfg: _WorkerConfig, epoch: int,
                      fault_plan=None, attempt: int = 0) -> EmbeddingShard:
        """Fork one shard worker and wrap it in a router-side client."""
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_shard_worker_main,
            args=(child_conn, shard_id, plan, worker_cfg, fault_plan,
                  attempt),
            daemon=True,
            name=f"embedding-shard-e{epoch}-{shard_id}.{replica}",
        )
        process.start()
        # Drop the parent's copy of the child end *before* spawning the
        # next worker, so a dead worker reads as EOF and later workers
        # never inherit this pipe.
        child_conn.close()
        return EmbeddingShard(shard_id, process, parent_conn,
                              replica=replica)

    def _spawn_table(self, plan: ShardPlan) -> _RoutingTable:
        """Fork ``num_shards x replication_factor`` workers for ``plan``."""
        worker_cfg = self._worker_config()
        # Start the parent's shared-memory resource tracker *before*
        # forking, so every worker inherits it.  A worker forked first
        # would lazily start a private tracker at its first publish
        # attach, and that tracker would warn about — and try to
        # re-unlink — blocks the publisher already cleaned up.
        resource_tracker.ensure_running()
        self._epoch += 1
        epoch = self._epoch
        groups: list[list[EmbeddingShard]] = []
        for shard_id in range(plan.num_shards):
            groups.append([
                self._spawn_worker(plan, shard_id, replica, worker_cfg,
                                   epoch)
                for replica in range(self.config.replication_factor)
            ])
        return _RoutingTable(plan, groups)

    def start(self) -> "ShardedFrontend":
        """Spawn the shard workers (idempotent); returns self."""
        if self._started:
            return self
        self._table = self._spawn_table(self._initial_plan)
        self._started = True
        # One synchronous round-trip per worker: surface spawn failures
        # here, not on the first query.
        for client in self._table.all_clients():
            client.request("ping", None, timeout=self.config.request_timeout)
        return self

    def close(self, timeout: float | None = None) -> None:
        """Stop every worker process concurrently (idempotent).

        A hung worker costs one ``stop_timeout`` escalation, not one
        per worker; receiver threads are joined (bounded) and the
        router's query-vector cache is cleared.
        """
        if self._closed:
            return
        self._closed = True
        timeout = self.config.stop_timeout if timeout is None else timeout
        table = self._table
        if table is not None:
            table.retire()
            self._stop_table(table, timeout)
        with self._vector_lock:
            self._vector_cache.clear()

    @staticmethod
    def _stop_table(table: _RoutingTable, stop_timeout: float) -> None:
        """Stop every worker of ``table`` concurrently (bounded)."""
        clients = table.all_clients()
        if not clients:
            return
        if len(clients) == 1:
            clients[0].stop(stop_timeout)
            return
        threads = []
        for client in clients:
            thread = threading.Thread(
                target=client.stop, args=(stop_timeout,), daemon=True,
                name=f"shard-stop-{client.shard_id}.{client.replica}",
            )
            thread.start()
            threads.append(thread)
        # stop() itself escalates within ~stop_timeout + 2s of joins;
        # anything still hanging past that is left to its daemon thread.
        deadline = time.monotonic() + stop_timeout + 4.0
        for thread in threads:
            thread.join(max(0.1, deadline - time.monotonic()))

    def __enter__(self) -> "ShardedFrontend":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    @property
    def plan(self) -> ShardPlan:
        """The currently routed plan (flips on :meth:`rebalance`)."""
        table = self._table
        return table.plan if table is not None else self._initial_plan

    @property
    def num_shards(self) -> int:
        return self.plan.num_shards

    @property
    def alive_shards(self) -> int:
        """Shards with at least one live replica."""
        table = self._table
        if table is None:
            return 0
        return sum(
            1 for group in table.groups
            if any(client.alive for client in group)
        )

    @property
    def alive_workers(self) -> int:
        """Worker processes currently able to answer (all replicas)."""
        table = self._table
        if table is None:
            return 0
        return sum(1 for client in table.all_clients() if client.alive)

    def _require_current(self) -> _VersionInfo:
        info = self._current
        if info is None:
            raise ServingError(
                "no embeddings published to the sharded tier yet; "
                "publish through a ShardedPublisher first"
            )
        return info

    @contextmanager
    def _routed(self):
        """Snapshot the routing table and hold it in-flight.

        Loops on ``enter()`` so a query racing a rebalance lands on
        exactly one table: either the old one (still counted, drained
        before its workers retire) or the new one — never a mix.
        """
        while True:
            table = self._table
            if table is None:
                raise ServingError(
                    "sharded frontend is not started; enter its context "
                    "(or call start()) first"
                )
            if table.enter():
                break
        try:
            yield table
        finally:
            table.exit()

    @property
    def num_nodes(self) -> int:
        """Nodes in the served version (the load generator's id space)."""
        return self._require_current().num_nodes

    @property
    def version(self) -> int:
        """Served version (0 before the first publish)."""
        info = self._current
        return info.version if info is not None else 0

    @property
    def generation(self) -> int:
        """Served generation (-1 before the first publish)."""
        info = self._current
        return info.generation if info is not None else -1

    def kill_shard(self, shard_id: int) -> None:
        """Hard-kill every replica of one shard (tests / chaos drills)."""
        table = self._table
        if table is None:
            raise ServingError("sharded frontend is not started")
        for client in table.groups[shard_id]:
            client.kill()

    def kill_replica(self, shard_id: int, replica: int) -> None:
        """Hard-kill one replica of one shard (tests / chaos drills)."""
        table = self._table
        if table is None:
            raise ServingError("sharded frontend is not started")
        table.groups[shard_id][replica].kill()

    def respawn_replica(self, shard_id: int, replica: int,
                        fault_plan=None, attempt: int = 0,
                        timeout: float | None = None) -> bool:
        """Replace one dead replica with a freshly forked worker.

        The recovery mechanism the control plane drives: under
        ``_publish_lock``, fork a replacement, ping it, install the
        retained served matrix's slice under the *currently served*
        version, and swap the new client into the live routing table's
        slot in one assignment — readers pick it up at their next
        round-robin selection, so recovery is invisible to queries.

        Holding ``_publish_lock`` end to end serializes the install
        with :meth:`ShardedPublisher.publish` and :meth:`rebalance`:
        a respawn racing a publish reads ``_current``/``_last_matrix``
        either entirely before or entirely after the publish's flip,
        so the replacement can never hold a version the router no
        longer serves (and a publish that wins the race installs onto
        the replacement like any other live replica).

        Returns False without spawning when the slot is already live
        (the sweep raced a rebalance that replaced the whole table).
        ``fault_plan``/``attempt`` forward to the worker's
        ``controlplane.respawn`` fault site for crash-loop drills.
        """
        if not self._started:
            raise ServingError("sharded frontend is not started")
        if self._closed:
            raise ServingError("sharded frontend is closed")
        timeout = self.config.request_timeout if timeout is None else timeout
        with self._publish_lock:
            table = self._table
            if not 0 <= shard_id < table.plan.num_shards:
                raise ServingError(
                    f"shard {shard_id} out of range "
                    f"[0, {table.plan.num_shards})")
            group = table.groups[shard_id]
            if not 0 <= replica < len(group):
                raise ServingError(
                    f"replica {replica} out of range [0, {len(group)})")
            if group[replica].alive:
                return False
            resource_tracker.ensure_running()
            client = self._spawn_worker(
                table.plan, shard_id, replica, self._worker_config(),
                self._epoch, fault_plan, attempt)
            try:
                client.request("ping", None, timeout=timeout)
                info = self._current
                if info is not None:
                    if self._last_matrix is None:  # pragma: no cover
                        raise ServingError(
                            "respawn cannot re-slice: the served matrix "
                            "was not retained"
                        )
                    ids = table.plan.owned_ids(shard_id, info.num_nodes)
                    block: SharedArray | None = None
                    spec = None
                    try:
                        if len(ids) > 0:
                            block = SharedArray.create(
                                self._last_matrix[ids])
                            spec = block.spec
                        client.request(
                            "install",
                            (info.version, info.generation,
                             info.num_nodes, spec),
                            timeout=timeout)
                    finally:
                        if block is not None:
                            block.close()
            except BaseException:
                client.stop(self.config.stop_timeout)
                raise
            # THE swap: one list-slot assignment on the live table;
            # queries routed before it keep failing over to siblings,
            # queries routed after it see the recovered replica.
            group[replica] = client
        return True

    # ------------------------------------------------------------------
    def _install(self, version: int, num_nodes: int, generation: int,
                 matrix: np.ndarray | None = None) -> None:
        """Flip the served version (publisher-only, under its lock).

        Retains ``matrix`` so a later :meth:`rebalance` can re-slice
        the served version under a new plan, and purges query vectors
        of superseded versions from the router LRU: stale
        ``(old_version, node)`` entries can never be read again — every
        fetch keys on the current version — but would squat in the LRU
        and evict hot current-version vectors.
        """
        self._version_counter = version
        self._current = _VersionInfo(version, num_nodes, generation)
        if matrix is not None:
            self._last_matrix = matrix
        with self._vector_lock:
            stale = [key for key in self._vector_cache
                     if key[0] != version]
            for key in stale:
                del self._vector_cache[key]

    def _install_slices(self, table: _RoutingTable, version: int,
                        generation: int, num_nodes: int,
                        matrix: np.ndarray, timeout: float
                        ) -> tuple[int, int]:
        """Install ``matrix`` sliced per ``table.plan`` on every live
        worker under ``version``; returns ``(acked, issued)`` counts.

        One shared block per shard slice — sibling replicas attach the
        same pages and copy locally.
        """
        blocks: list[SharedArray] = []
        acked = 0
        try:
            pending: list[_Reply] = []
            for shard_id, group in enumerate(table.groups):
                live = [client for client in group if client.alive]
                if not live:
                    continue
                ids = table.plan.owned_ids(shard_id, num_nodes)
                spec = None
                if len(ids) > 0:
                    block = SharedArray.create(matrix[ids])
                    blocks.append(block)
                    spec = block.spec
                for client in live:
                    pending.append(client.request_async(
                        "install", (version, generation, num_nodes, spec)))
            issued = len(pending)
            for reply in pending:
                try:
                    reply.result(timeout)
                    acked += 1
                except _ShardDownError:
                    # Died mid-install; sibling replicas (or the
                    # degraded gather) cover for it.
                    pass
        finally:
            for block in blocks:
                block.close()
        return acked, issued

    def _fetch_vector(self, table: _RoutingTable, info: _VersionInfo,
                      node: int) -> np.ndarray:
        """The query vector of ``node`` under ``info`` (router-cached).

        Tries each live replica of the owning shard in round-robin
        order; a replica dying mid-fetch fails over to its sibling.
        """
        rec = get_recorder()
        key = (info.version, node)
        with self._vector_lock:
            hit = self._vector_cache.get(key)
            if hit is not None:
                self._vector_cache.move_to_end(key)
        if hit is not None:
            rec.counter("serving.shard.vector_cache_hits")
            return hit
        shard = table.plan.shard_of(node, info.num_nodes)
        candidates = table.live_replicas(shard)
        vector = None
        for position, client in enumerate(candidates):
            try:
                vector, _seconds = client.request(
                    "vector", (info.version, node),
                    timeout=self.config.request_timeout,
                )
                break
            except _ShardDownError:
                if position + 1 < len(candidates) and rec.enabled:
                    rec.counter("serving.shard.replica.failovers")
                continue
        if vector is None:
            raise ServingError(
                f"cannot fetch the query vector of node {node}: owning "
                f"shard {shard} is down and the vector is not cached"
            )
        rec.counter("serving.shard.vector_fetches")
        if self.config.vector_cache_size > 0:
            with self._vector_lock:
                self._vector_cache[key] = vector
                while len(self._vector_cache) > self.config.vector_cache_size:
                    self._vector_cache.popitem(last=False)
        return vector

    def _with_stale_retry(self, fn):
        """Run ``fn`` once more under the refreshed version on staleness.

        A worker only drops a version after ``keep_versions`` newer
        publishes landed, so one retry against the *new* current
        version always finds installed slices (the publisher flips the
        router's version last).
        """
        try:
            return fn()
        except _StaleVersionError:
            get_recorder().counter("serving.shard.stale_retries")
            try:
                return fn()
            except _StaleVersionError as exc:
                raise ServingError(
                    f"shard versions churned during retry: {exc}"
                ) from exc

    # ------------------------------------------------------------------
    def top_k(self, node: int, k: int | None = None,
              timeout: float | None = None) -> TopK:
        """Top-``k`` nodes for ``node``, best first — the scatter/gather.

        Bit-identical to the single-process oracle while every shard
        has a live replica (a dead replica fails over to a sibling
        transparently); with whole shards dead the merge covers the
        surviving slices and the query counts as
        ``serving.shard.degraded_queries``.
        """
        rec = get_recorder()
        start = time.monotonic()
        result = self._with_stale_retry(
            lambda: self._top_k_once(int(node), k, timeout))
        if rec.enabled:
            rec.counter("serving.shard.requests.topk")
            rec.observe("serving.shard.latency.topk_s",
                        time.monotonic() - start)
        return result

    def _top_k_once(self, node: int, k: int | None,
                    timeout: float | None) -> TopK:
        k = self.config.default_k if k is None else int(k)
        if k < 1:
            raise ServingError(f"k must be >= 1, got {k}")
        info = self._require_current()
        if not 0 <= node < info.num_nodes:
            raise ServingError(
                f"node {node} out of range [0, {info.num_nodes})"
            )
        timeout = self.config.request_timeout if timeout is None else timeout
        rec = get_recorder()
        start = time.monotonic()
        with self._routed() as table:
            vector = self._fetch_vector(table, info, node)
            payload = (info.version, node, k, vector)
            pending = []
            for shard_id in range(table.plan.num_shards):
                order = table.live_replicas(shard_id)
                if not order:
                    continue  # whole shard dead: degrade at the merge
                pending.append(
                    (shard_id, order, order[0].request_async("topk",
                                                             payload)))
            replies: list[tuple[int, int, tuple, float]] = []
            stale: _StaleVersionError | None = None
            for shard_id, order, reply in pending:
                position = 0
                while True:
                    try:
                        answer, seconds = reply.result(timeout)
                        replies.append((shard_id, order[position].replica,
                                        answer, seconds))
                        break
                    except _StaleVersionError as exc:
                        stale = exc
                        break
                    except _ShardDownError:
                        # The chosen replica died between routing and
                        # reply: re-issue to the next live sibling; only
                        # a shard with no survivors degrades the gather.
                        nxt = next(
                            (i for i in range(position + 1, len(order))
                             if order[i].alive), None)
                        if nxt is None:
                            if rec.enabled:
                                rec.counter("serving.shard.gather_drops")
                            break
                        position = nxt
                        if rec.enabled:
                            rec.counter("serving.shard.replica.failovers")
                        reply = order[position].request_async(
                            "topk", payload)
            if stale is not None:
                raise stale
            if not replies:
                raise ServingError(
                    "top-k gather failed: no shard worker answered"
                )
            wall = time.monotonic() - start
            merged = self._merge_topk(info, k, replies)
            if rec.enabled:
                self._record_gather(rec, table, replies, wall)
            return merged

    def _merge_topk(self, info: _VersionInfo, k: int,
                    replies: list[tuple[int, int, tuple, float]]) -> TopK:
        """Merge per-shard local top-k pools under the oracle's order.

        Any row in the true global top-k is inside its own shard's
        local top-k (at most k rows of that shard precede it in the
        total order), so concatenating the pools and re-sorting by
        (score desc, lower global id) reproduces the oracle exactly.
        """
        pool_ids = np.concatenate(
            [answer[0] for _sid, _rep, answer, _s in replies])
        pool_scores = np.concatenate(
            [answer[1] for _sid, _rep, answer, _s in replies])
        k_eff = min(k, info.num_nodes - 1, len(pool_ids))
        order = np.lexsort((pool_ids, -pool_scores))[:k_eff]
        ids = pool_ids[order].copy()
        scores = pool_scores[order].copy()
        ids.setflags(write=False)
        scores.setflags(write=False)
        return ids, scores

    def _record_gather(self, rec, table: _RoutingTable, replies,
                       wall: float) -> None:
        rec.observe("serving.shard.gather_fanin", len(replies))
        slowest = 0.0
        for shard_id, replica, answer, seconds in replies:
            rec.counter(f"serving.shard.{shard_id}.requests")
            rec.observe(f"serving.shard.{shard_id}.seconds", seconds)
            if table.replication > 1:
                rec.counter(
                    f"serving.shard.{shard_id}.replica.{replica}.requests")
            slowest = max(slowest, seconds)
            if len(answer) > 2 and answer[2]:
                rec.counter("serving.shard.cache_hits")
        rec.observe("serving.shard.router_overhead_s",
                    max(0.0, wall - slowest))
        # Degraded means a *shard* went unanswered — a dead replica
        # whose sibling answered is invisible here.
        if len(replies) < table.plan.num_shards:
            rec.counter("serving.shard.degraded_queries")

    # ------------------------------------------------------------------
    def score_link(self, src: int, dst: int,
                   timeout: float | None = None) -> float:
        """Similarity score of ``(src, dst)``, routed to an owning shard.

        Served by a live replica of ``src``'s shard when one exists
        (``dst``'s vector ships along unless the pair is co-located);
        scores are symmetric, so when ``src``'s shard is entirely down
        — or its chosen replica dies between routing and reply — the
        request fails over to a sibling replica and then to ``dst``'s
        shard.  Raises :class:`~repro.errors.ServingError` only when no
        owning worker survives.
        """
        rec = get_recorder()
        start = time.monotonic()
        result = self._with_stale_retry(
            lambda: self._score_once(int(src), int(dst), timeout))
        if rec.enabled:
            rec.counter("serving.shard.requests.score")
            rec.observe("serving.shard.latency.score_s",
                        time.monotonic() - start)
        return result

    def _score_once(self, src: int, dst: int,
                    timeout: float | None) -> float:
        info = self._require_current()
        for node in (src, dst):
            if not 0 <= node < info.num_nodes:
                raise ServingError(
                    f"node {node} out of range [0, {info.num_nodes})"
                )
        timeout = self.config.request_timeout if timeout is None else timeout
        rec = get_recorder()
        with self._routed() as table:
            src_shard = table.plan.shard_of(src, info.num_nodes)
            dst_shard = table.plan.shard_of(dst, info.num_nodes)
            # Liveness is rechecked per attempt, not only up front: a
            # replica dying between routing and reply surfaces as
            # _ShardDownError from request(), and the next candidate —
            # sibling replica first, then dst's shard — takes over.
            attempts: list[tuple[EmbeddingShard, int, int, int]] = []
            for anchor, a_shard, peer, p_shard in (
                    (src, src_shard, dst, dst_shard),
                    (dst, dst_shard, src, src_shard)):
                for client in table.live_replicas(a_shard):
                    attempts.append((client, anchor, peer, p_shard))
                if src_shard == dst_shard:
                    break  # co-located: both directions are one shard
            if not attempts:
                raise ServingError(
                    f"link score ({src}, {dst}) unservable: shards "
                    f"{src_shard} and {dst_shard} are both down"
                )
            last_error: ServingError | None = None
            attempted = 0
            for client, anchor, peer, p_shard in attempts:
                if not client.alive:
                    continue
                if attempted and rec.enabled:
                    rec.counter("serving.shard.replica.failovers")
                attempted += 1
                try:
                    if p_shard == client.shard_id:
                        payload = (info.version, anchor, peer, None)
                    else:
                        payload = (info.version, anchor, None,
                                   self._fetch_vector(table, info, peer))
                    score, seconds = client.request(
                        "score", payload, timeout=timeout)
                except _StaleVersionError:
                    raise
                except _ShardDownError as exc:
                    last_error = exc
                    continue
                except ServingError as exc:
                    # E.g. the peer's vector is unfetchable from this
                    # direction; the mirrored anchor may still serve a
                    # co-located pair.
                    last_error = exc
                    continue
                if rec.enabled:
                    rec.counter(f"serving.shard.{client.shard_id}.requests")
                    rec.observe(f"serving.shard.{client.shard_id}.seconds",
                                seconds)
                    if table.replication > 1:
                        rec.counter(
                            f"serving.shard.{client.shard_id}.replica."
                            f"{client.replica}.requests")
                return float(score)
            raise ServingError(
                f"link score ({src}, {dst}) unservable: no owning "
                f"worker survives"
            ) from last_error

    # ------------------------------------------------------------------
    def rebalance(self, new_plan: ShardPlan,
                  timeout: float | None = None,
                  drain_timeout: float | None = None) -> RebalanceReport:
        """Migrate the live tier to ``new_plan`` without stopping reads.

        Spawns the new worker set, installs the *served* version's
        slices under the new plan, flips the routing table in one
        reference assignment (queries in flight finish under the table
        — plan and workers — they were routed on; new queries route
        under the new plan), waits for the old table to drain, then
        retires the old workers concurrently.  Serialized against
        publishes, so the version a query carries always matches the
        slices of the table it routed on.  Zero query errors, zero
        degraded gathers, zero mixed-plan responses by construction.
        """
        if not isinstance(new_plan, ShardPlan):
            raise ServingError(
                f"rebalance needs a ShardPlan, got {type(new_plan).__name__}"
            )
        if not self._started:
            raise ServingError(
                "sharded frontend is not started; enter its context "
                "(or call start()) before rebalancing"
            )
        if self._closed:
            raise ServingError("sharded frontend is closed")
        timeout = self.config.request_timeout if timeout is None else timeout
        drain_timeout = (self.config.request_timeout
                         if drain_timeout is None else drain_timeout)
        rec = get_recorder()
        start = time.perf_counter()
        install_s = 0.0
        with self._publish_lock:
            old_table = self._table
            new_table = self._spawn_table(new_plan)
            try:
                for client in new_table.all_clients():
                    client.request("ping", None, timeout=timeout)
                info = self._current
                if info is not None:
                    if self._last_matrix is None:  # pragma: no cover
                        raise ServingError(
                            "rebalance cannot re-slice: the served "
                            "matrix was not retained"
                        )
                    t0 = time.perf_counter()
                    acked, issued = self._install_slices(
                        new_table, info.version, info.generation,
                        info.num_nodes, self._last_matrix, timeout)
                    install_s = time.perf_counter() - t0
                    if issued and not acked:
                        raise ServingError(
                            "rebalance failed: no new worker installed "
                            "the served version"
                        )
            except BaseException:
                self._stop_table(new_table, self.config.stop_timeout)
                raise
            # THE flip: queries from here route under new_plan against
            # workers that already hold the served version.
            self._table = new_table
        # Outside the publish lock: let in-flight old-plan queries
        # finish, then retire the old worker set.
        old_table.retire()
        t0 = time.monotonic()
        drained = old_table.wait_drained(drain_timeout)
        drain_s = time.monotonic() - t0
        self._stop_table(old_table, self.config.stop_timeout)
        wall = time.perf_counter() - start
        if rec.enabled:
            rec.counter("serving.shard.rebalance.count")
            rec.observe("serving.shard.rebalance.seconds", wall)
            rec.observe("serving.shard.rebalance.install_s", install_s)
            rec.observe("serving.shard.rebalance.drain_s", drain_s)
            rec.gauge("serving.shard.rebalance.num_shards",
                      new_plan.num_shards)
            if not drained:
                rec.counter("serving.shard.rebalance.forced_stops")
        return RebalanceReport(
            seconds=wall, install_seconds=install_s,
            drain_seconds=drain_s, drained=drained,
            old_plan=old_table.plan, new_plan=new_plan,
        )

    # ------------------------------------------------------------------
    def worker_metrics(self, timeout: float | None = None
                       ) -> dict[str, object]:
        """Aggregate every live worker's recorder state at the router.

        Scatters a ``metrics`` op to every replica and merges the
        returned recorder states exactly (counters add, histograms
        merge by moments, gauges last-write-wins).  The merged document
        is returned and — when the ambient recorder is enabled — folded
        into it under ``serving.shard.workers.<name>`` (plus a
        ``serving.shard.workers.reporting`` gauge), so ``serve-sim``
        exports carry per-shard index/ANN internals that previously
        died with the worker processes.  Counters are cumulative over a
        worker's lifetime: call once per run, not per interval.
        """
        if not self._started:
            raise ServingError("sharded frontend is not started")
        timeout = self.config.request_timeout if timeout is None else timeout
        merged = Recorder()
        reporting = 0
        with self._routed() as table:
            pending = [client.request_async("metrics", None)
                       for client in table.all_clients() if client.alive]
            for reply in pending:
                try:
                    state, _seconds = reply.result(timeout)
                except ServingError:
                    continue  # died mid-scatter: report the survivors
                merged.merge_state(state)
                reporting += 1
        doc = merged.export_state()
        rec = get_recorder()
        if rec.enabled and reporting:
            rec.merge_state(doc, prefix="serving.shard.workers.")
            rec.gauge("serving.shard.workers.reporting", reporting)
        return doc


# ---------------------------------------------------------------------------
# Publisher
# ---------------------------------------------------------------------------
class ShardedPublisher:
    """Slices snapshots per shard and installs them version-atomically.

    Every publish: slice the matrix by the frontend's current plan,
    copy each slice into a :class:`~repro.parallel.shared_array
    .SharedArray` block, install all slices on every live replica under
    one new version, and only after every live worker acked flip the
    router's served version.  Queries are tagged with the version they
    were routed under and workers retain ``keep_versions`` installed
    versions, so a gather can never pair one shard's new slice with
    another's old one.

    :meth:`attach` subscribes to an :class:`EmbeddingStore` so an
    :class:`~repro.tasks.incremental.IncrementalEmbedder` (or the
    stream controller) publishing there fans out here automatically —
    the same hook the ANN manager uses.
    """

    def __init__(self, frontend: ShardedFrontend,
                 timeout: float = 120.0) -> None:
        if timeout <= 0:
            raise ServingError(f"timeout must be > 0, got {timeout}")
        self.frontend = frontend
        self._timeout = timeout
        self._attached: list[tuple[EmbeddingStore, object]] = []

    # ------------------------------------------------------------------
    def publish(self, matrix: np.ndarray, generation: int = 0) -> int:
        """Install ``matrix`` across every shard; returns the version."""
        frontend = self.frontend
        if not frontend._started:
            raise ServingError(
                "sharded frontend is not started; enter its context "
                "(or call start()) before publishing"
            )
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[0] < 1:
            raise ServingError(
                "published embeddings must be a non-empty 2-D matrix, "
                f"got shape {matrix.shape}"
            )
        start = time.perf_counter()
        with frontend._publish_lock:
            current = frontend._current
            if current is not None and generation < current.generation:
                raise ServingError(
                    f"stale publish: generation {generation} is older "
                    f"than the served generation {current.generation}"
                )
            version = frontend._version_counter + 1
            num_nodes = matrix.shape[0]
            table = frontend._table
            _acked, issued = frontend._install_slices(
                table, version, int(generation), num_nodes, matrix,
                self._timeout)
            if issued == 0:
                raise ServingError(
                    "sharded publish failed: every worker is down"
                )
            # The flip: queries issued from here on are tagged with the
            # fully-installed new version.
            frontend._install(version, num_nodes, int(generation), matrix)
        rec = get_recorder()
        rec.counter("serving.shard.publishes")
        rec.gauge("serving.shard.version", version)
        rec.gauge("serving.shard.generation", int(generation))
        rec.observe("serving.shard.install_s",
                    time.perf_counter() - start)
        return version

    # ------------------------------------------------------------------
    def attach(self, store: EmbeddingStore) -> None:
        """Fan out every future publish of ``store`` to the shards.

        The store's current snapshot (if any) is published immediately,
        so attaching to a warm store brings the tier up to date.
        """

        def _on_publish(snapshot) -> None:
            self.publish(snapshot.matrix, snapshot.generation)

        store.subscribe(_on_publish)
        self._attached.append((store, _on_publish))
        if not store.empty:
            snapshot = store.snapshot()
            self.publish(snapshot.matrix, snapshot.generation)

    def detach(self) -> None:
        """Unsubscribe from every attached store (idempotent)."""
        attached, self._attached = self._attached, []
        for store, callback in attached:
            store.unsubscribe(callback)
