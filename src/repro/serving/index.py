"""Blocked top-k recommendation index with a generation-keyed LRU cache.

Top-k over the embedding matrix is the serving analogue of the paper's
similarity-driven downstream tasks: "who should node ``u`` connect to
next" is ``argmax_v f(u) . f(v)`` (§IV-B edge scoring without the
classifier head).  :class:`RecommendationIndex` evaluates it in blocks
of rows — bounded peak memory regardless of graph size, the same reason
the walk kernel processes CSR slices — and memoizes per-``(node, k)``
results in an LRU cache.

Two execution modes share the scoring/selection code:

- ``"exact"`` — the blocked full scan (the oracle): every row scored,
  ties broken by lower id;
- ``"ivf"`` — candidates come from an :class:`~repro.serving.ann
  .IvfIndex` (probe ``nprobe`` k-means cells), and only those rows run
  through the *same* blocked scorer.  Queries fall back to exact
  automatically when no index matches the pinned snapshot version
  (cold store, build in flight, store below ``min_index_nodes``) or the
  probed candidates cannot cover ``min(k, n - 1)`` results.

Cache entries are valid for exactly one
:class:`~repro.serving.store.EmbeddingSnapshot` *version* and one mode:
the first query after a publish observes the version bump and drops the
whole cache, so a stale top-k can never be served once new embeddings
are published, and an ``"exact"`` request can never be answered from an
approximate entry (the reverse is allowed — an exact answer has
recall 1).

Work accounting: ``serving.index.gemm_rows`` counts row-dot-products
evaluated; a warm cache hit adds exactly zero to it.  The ANN path
additionally books ``serving.ann.*`` (cells probed, candidates scored,
fallbacks, sampled recall).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ServingError
from repro.observability import get_recorder
from repro.serving.ann import INDEX_CHOICES
from repro.serving.store import EmbeddingSnapshot, EmbeddingStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serving.ann import IvfIndexManager

METRIC_CHOICES = ("dot", "cosine")

#: One cached result: (ids desc by score, scores) — both read-only.
TopK = tuple[np.ndarray, np.ndarray]

#: One request: ``(node, k)`` or ``(node, k, mode)`` with mode one of
#: :data:`~repro.serving.ann.INDEX_CHOICES` (None -> the index default).
TopKRequest = "tuple[int, int] | tuple[int, int, str | None]"

_TINY = np.finfo(np.float64).tiny


class RecommendationIndex:
    """Cached blocked top-k over the currently served embeddings."""

    def __init__(
        self,
        store: EmbeddingStore,
        cache_size: int = 4096,
        block_size: int = 8192,
        metric: str = "dot",
        ann: "IvfIndexManager | None" = None,
        default_mode: str | None = None,
    ) -> None:
        if cache_size < 0:
            raise ServingError(f"cache_size must be >= 0, got {cache_size}")
        if block_size < 1:
            raise ServingError(f"block_size must be >= 1, got {block_size}")
        if metric not in METRIC_CHOICES:
            raise ServingError(
                f"unknown metric {metric!r}; options: {list(METRIC_CHOICES)}"
            )
        if default_mode is None:
            default_mode = "ivf" if ann is not None else "exact"
        if default_mode not in INDEX_CHOICES:
            raise ServingError(
                f"unknown index mode {default_mode!r}; options: "
                f"{list(INDEX_CHOICES)}"
            )
        if default_mode == "ivf" and ann is None:
            raise ServingError("default_mode='ivf' requires an ann manager")
        self.store = store
        self.cache_size = cache_size
        self.block_size = block_size
        self.metric = metric
        self.ann = ann
        self.default_mode = default_mode
        self._lock = threading.Lock()
        self._cache: OrderedDict[tuple[int, int, str], TopK] = OrderedDict()
        self._cache_version: int = -1
        self._ann_query_count = 0

    # ------------------------------------------------------------------
    # Cache plumbing
    # ------------------------------------------------------------------
    def _sync_version(self, snapshot: EmbeddingSnapshot) -> None:
        """Drop every entry computed against an older snapshot.

        Caller must hold the lock.  Runs on the query path, so the
        first read after a publish — not the publish itself — pays the
        O(1) clear; publishes stay wait-free.  Only ever advances: a
        reader holding an older snapshot than the cache must not roll
        the cache back to it.
        """
        if self._cache_version < snapshot.version:
            self._cache.clear()
            self._cache_version = snapshot.version

    def _resolve_mode(self, mode: str | None) -> str:
        if mode is None:
            return self.default_mode
        if mode not in INDEX_CHOICES:
            raise ServingError(
                f"unknown index mode {mode!r}; options: {list(INDEX_CHOICES)}"
            )
        if mode == "ivf" and self.ann is None:
            raise ServingError(
                "index mode 'ivf' requested but no ANN manager is attached"
            )
        return mode

    def cached(self, node: int, k: int,
               snapshot: EmbeddingSnapshot | None = None,
               mode: str | None = None) -> TopK | None:
        """Return the cached result for ``(node, k, mode)`` or None.

        Only results computed against ``snapshot``'s version qualify
        (the *current* store snapshot when omitted); a hit refreshes
        LRU recency and counts as ``serving.index.cache_hits``.
        Passing an explicit snapshot pins a multi-request batch to one
        version: a publish landing mid-batch cannot mix newer cache
        hits into a batch computed against the older snapshot.  An
        ``"ivf"`` lookup may also be answered by an ``"exact"`` entry
        (exact answers have recall 1); the reverse never happens.
        """
        mode = self._resolve_mode(mode)
        if snapshot is None:
            snapshot = self.store.snapshot()
        with self._lock:
            self._sync_version(snapshot)
            if self._cache_version != snapshot.version:
                # The cache has moved past this snapshot's version; its
                # entries would answer from a different generation.
                return None
            hit = self._cache.get((node, k, mode))
            if hit is None and mode == "ivf":
                hit = self._cache.get((node, k, "exact"))
                if hit is not None:
                    self._cache.move_to_end((node, k, "exact"))
            elif hit is not None:
                self._cache.move_to_end((node, k, mode))
            if hit is None:
                return None
        get_recorder().counter("serving.index.cache_hits")
        return hit

    def _fill(self, snapshot: EmbeddingSnapshot, node: int, k: int,
              mode: str, result: TopK) -> None:
        with self._lock:
            if self._cache_version != snapshot.version or self.cache_size == 0:
                return
            self._cache[(node, k, mode)] = result
            self._cache.move_to_end((node, k, mode))
            while len(self._cache) > self.cache_size:
                self._cache.popitem(last=False)
                get_recorder().counter("serving.index.cache_evictions")

    def __len__(self) -> int:
        with self._lock:
            return len(self._cache)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def top_k(self, node: int, k: int, mode: str | None = None) -> TopK:
        """Top-``k`` nodes for ``node`` (self excluded), best first."""
        hit = self.cached(node, k, mode=mode)
        if hit is not None:
            return hit
        return self.top_k_batch([(node, k, mode)])[0]

    def top_k_batch(self, requests: "list[TopKRequest]") -> list[TopK]:
        """Serve many requests with shared block scans.

        Each request is ``(node, k)`` or ``(node, k, mode)``.  Cache
        hits are answered in place; the remaining distinct exact
        requests of each ``k`` share one blocked pass over the matrix,
        which is what makes micro-batched top-k amortize, while ANN
        requests score only their probed candidate rows.  The whole
        batch answers from the one snapshot taken here — cache lookups
        and the ANN index are pinned to its version, so a publish (or
        an index build) racing the batch can never mix results from two
        embedding generations in one response.
        """
        snapshot = self.store.snapshot()
        rec = get_recorder()
        ann_index = None
        if self.ann is not None:
            ann_index = self.ann.index_for(snapshot)
        results: dict[int, TopK] = {}
        exact_misses: dict[int, list[int]] = {}
        ivf_misses: list[tuple[int, int, int]] = []  # (i, node, k)
        for i, request in enumerate(requests):
            node, k = int(request[0]), int(request[1])
            mode = self._resolve_mode(
                request[2] if len(request) > 2 else None  # type: ignore[misc]
            )
            self._validate(snapshot, node, k)
            hit = self.cached(node, k, snapshot, mode)
            if hit is not None:
                results[i] = hit
                continue
            if mode == "ivf":
                if ann_index is None:
                    # Cold store, build in flight, or store too small.
                    rec.counter("serving.ann.fallbacks")
                    rec.counter("serving.ann.fallbacks.no_index")
                    mode = "exact"
                else:
                    ivf_misses.append((i, node, k))
                    continue
            exact_misses.setdefault(k, []).append(i)

        for i, node, k in ivf_misses:
            result = self._compute_ivf(snapshot, ann_index, node, k)
            if result is None:  # not enough candidates: exact fallback
                exact_misses.setdefault(k, []).append(i)
                continue
            results[i] = result
            self._fill(snapshot, node, k, "ivf", result)

        for k, indices in exact_misses.items():
            nodes = []
            for i in indices:
                node = int(requests[i][0])
                if node not in nodes:
                    nodes.append(node)
            rec.counter("serving.index.cache_misses", len(nodes))
            ids, scores = self._compute_many(
                snapshot, np.asarray(nodes, dtype=np.int64), k
            )
            computed: dict[int, TopK] = {}
            for column, node in enumerate(nodes):
                result = (ids[:, column].copy(), scores[:, column].copy())
                result[0].setflags(write=False)
                result[1].setflags(write=False)
                computed[node] = result
                self._fill(snapshot, node, k, "exact", result)
            for i in indices:
                results[i] = computed[int(requests[i][0])]
        return [results[i] for i in range(len(requests))]

    def top_k_vector(self, vector: np.ndarray, k: int,
                     exclude_row: int = -1,
                     row_ids: np.ndarray | None = None) -> TopK:
        """Top-``k`` rows for a raw query vector, best first.

        The sharded serving tier's scatter path: every shard scores the
        *shipped* query vector against its local rows, so the query
        node's own row only exists (and is excluded, via
        ``exclude_row``) on the owning shard.  ``row_ids`` restricts
        scoring to a sorted candidate subset (the per-shard IVF path).
        Results are not cached here — the shard worker keys its own LRU
        by the global query node id, which this index never sees.
        """
        snapshot = self.store.snapshot()
        vector = np.asarray(vector, dtype=np.float64).reshape(-1)
        if vector.shape[0] != snapshot.dim:
            raise ServingError(
                f"query vector has dim {vector.shape[0]}, "
                f"snapshot has dim {snapshot.dim}"
            )
        if k < 1:
            raise ServingError(f"k must be >= 1, got {k}")
        if exclude_row >= snapshot.num_nodes:
            raise ServingError(
                f"exclude_row {exclude_row} out of range "
                f"[0, {snapshot.num_nodes})"
            )
        ids, scores = self._compute_many(
            snapshot, None, k, row_ids=row_ids,
            queries=vector[None, :],
            exclude=np.asarray([exclude_row], dtype=np.int64),
        )
        result = (ids[:, 0].copy(), scores[:, 0].copy())
        result[0].setflags(write=False)
        result[1].setflags(write=False)
        return result

    def _validate(self, snapshot: EmbeddingSnapshot, node: int,
                  k: int) -> None:
        if not 0 <= node < snapshot.num_nodes:
            raise ServingError(
                f"node {node} out of range [0, {snapshot.num_nodes})"
            )
        if k < 1:
            raise ServingError(f"k must be >= 1, got {k}")

    # ------------------------------------------------------------------
    # ANN path
    # ------------------------------------------------------------------
    def _compute_ivf(self, snapshot: EmbeddingSnapshot, ann_index,
                     node: int, k: int) -> TopK | None:
        """One ANN query: probe cells, score candidates exactly.

        Returns None when the probed candidates cannot fill
        ``min(k, n - 1)`` results (empty probe cells, ``k`` exhausting
        the indexed rows) — the caller then takes the exact path, so an
        ANN answer always has the same shape as the exact one.
        """
        rec = get_recorder()
        candidates, probed = ann_index.candidate_rows(node)
        k_eff = min(k, snapshot.num_nodes - 1)
        available = len(candidates)
        if available and np.searchsorted(candidates, node) < available \
                and candidates[np.searchsorted(candidates, node)] == node:
            available -= 1  # self-exclusion consumes one candidate
        if available < k_eff:
            rec.counter("serving.ann.fallbacks")
            rec.counter("serving.ann.fallbacks.insufficient_candidates")
            return None
        rec.counter("serving.ann.queries")
        rec.counter("serving.ann.cells_probed", probed)
        rec.counter("serving.ann.candidates_scored", len(candidates))
        ids, scores = self._compute_many(
            snapshot, np.asarray([node], dtype=np.int64), k,
            row_ids=candidates,
        )
        result = (ids[:, 0].copy(), scores[:, 0].copy())
        result[0].setflags(write=False)
        result[1].setflags(write=False)
        self._maybe_sample_recall(snapshot, node, k, result)
        return result

    def _maybe_sample_recall(self, snapshot: EmbeddingSnapshot, node: int,
                             k: int, result: TopK) -> None:
        """Shadow-check every N-th ANN answer against the oracle."""
        every = self.ann.config.recall_sample_every if self.ann else 0
        if every <= 0:
            return
        with self._lock:
            self._ann_query_count += 1
            due = self._ann_query_count % every == 0
        if not due:
            return
        exact_ids, _ = self._compute_many(
            snapshot, np.asarray([node], dtype=np.int64), k
        )
        k_eff = len(exact_ids)
        recall = 1.0
        if k_eff:
            overlap = np.intersect1d(result[0], exact_ids[:, 0])
            recall = len(overlap) / k_eff
        rec = get_recorder()
        rec.counter("serving.ann.recall_samples")
        rec.observe("serving.ann.recall_at_k", recall)

    # ------------------------------------------------------------------
    @staticmethod
    def _select_top(block_scores: np.ndarray, take: int) -> np.ndarray:
        """Row offsets of the top ``take`` scores per column.

        Exact total order: descending score, ties broken by *lower row
        offset* (= lower node id, since blocks are id-ascending).  A
        plain ``argpartition`` keeps an arbitrary subset of boundary
        ties, which silently violated the documented lower-id tie-break
        on duplicate-heavy matrices; the threshold + cumulative-count
        selection below admits exactly the lowest-id ties instead, for
        one extra cheap pass over the block.
        """
        rows, columns = block_scores.shape
        if take >= rows:
            return np.broadcast_to(
                np.arange(rows, dtype=np.int64)[:, None], (rows, columns)
            )
        kth = np.partition(block_scores, rows - take, axis=0)[rows - take]
        above = block_scores > kth
        need = take - above.sum(axis=0)
        tied = block_scores == kth
        selected = above | (tied & (np.cumsum(tied, axis=0) <= need))
        # Exactly ``take`` per column; nonzero on the transpose walks
        # column-major, rows ascending within each column.
        offsets = np.nonzero(selected.T)[1]
        return offsets.reshape(columns, take).T

    def _compute_many(self, snapshot: EmbeddingSnapshot,
                      nodes: np.ndarray | None, k: int,
                      row_ids: np.ndarray | None = None,
                      queries: np.ndarray | None = None,
                      exclude: np.ndarray | None = None,
                      ) -> tuple[np.ndarray, np.ndarray]:
        """Blocked top-k for ``m`` distinct query nodes at once.

        Returns ``(ids, scores)`` of shape ``(k_eff, m)`` with each
        column sorted best-first (ties broken by lower id).  Peak
        memory is O(block_size * m) however large the matrix is.

        ``row_ids`` (sorted ascending) restricts scoring to a candidate
        subset — the ANN path.  A block of consecutive ids is detected
        and served from a contiguous slice, so candidates covering the
        whole id range (``nprobe = nlist``) run the *identical*
        block/GEMM/selection sequence as the full scan and return
        bit-identical results.

        ``queries`` (shape ``(m, d)``) scores raw vectors instead of
        ``matrix[nodes]`` — the sharded scatter path, where the query
        row usually lives on another shard.  ``exclude`` then carries
        one row id per query to mask (-1 = none); with ``nodes`` the
        exclusion is the query node itself, exactly as before.
        """
        rec = get_recorder()
        matrix = snapshot.matrix
        n = snapshot.num_nodes
        if queries is None:
            assert nodes is not None
            exclude = nodes
            query_rows = matrix[nodes]
            query_norms = snapshot.norms[nodes]
        else:
            query_rows = np.ascontiguousarray(queries, dtype=np.float64)
            if exclude is None:
                exclude = np.full(len(query_rows), -1, dtype=np.int64)
            # Same per-row reduction as the snapshot's own norms, so a
            # shipped copy of a row scores bit-identically to the row.
            query_norms = np.linalg.norm(query_rows, axis=1)
        m = len(query_rows)
        # Self-exclusion consumes one candidate; a query with no local
        # exclusion row (remote shard) can use all n.
        k_eff = min(k, n - 1) if bool(np.all(exclude >= 0)) else min(k, n)
        if k_eff <= 0:
            empty = np.empty((0, m), dtype=np.int64)
            return empty, np.empty((0, m), dtype=np.float64)
        queries = query_rows.T  # (d, m)
        if self.metric == "cosine":
            qnorm = np.where(query_norms == 0.0, 1.0, query_norms)
        total = n if row_ids is None else len(row_ids)
        cand_ids: list[np.ndarray] = []
        cand_scores: list[np.ndarray] = []
        for start in range(0, total, self.block_size):
            stop = min(total, start + self.block_size)
            if row_ids is None:
                ids_block = None
                rows = matrix[start:stop]
                row_norms = snapshot.norms[start:stop]
            else:
                ids_block = row_ids[start:stop]
                lo, hi = int(ids_block[0]), int(ids_block[-1])
                if hi - lo + 1 == len(ids_block):  # consecutive run
                    rows = matrix[lo:hi + 1]
                    row_norms = snapshot.norms[lo:hi + 1]
                else:
                    rows = matrix[ids_block]
                    row_norms = snapshot.norms[ids_block]
            if m == 1:
                # Per-row deterministic kernel: einsum's reduction order
                # depends only on d, never on the block's row count,
                # where BLAS GEMV picks shape-dependent accumulation
                # orders.  Single-query scores are therefore a pure
                # function of (row bits, query bits) — the property that
                # makes a shard worker scoring its slice bit-identical
                # to this oracle scanning the full matrix.
                block_scores = np.einsum("nd,dm->nm", rows, queries)
            else:
                block_scores = rows @ queries  # (bs, m)
            rec.counter("serving.index.gemm_rows", (stop - start) * m)
            if self.metric == "cosine":
                norms = np.where(row_norms == 0.0, 1.0, row_norms)
                denom = norms[:, None] * qnorm[None, :]
                # Two tiny-but-nonzero norms can *underflow* to a zero
                # product even though both factors passed the zero
                # guard; dividing by it put NaN into the ordering.
                np.maximum(denom, _TINY, out=denom)
                block_scores /= denom
            # Self-exclusion: a query node inside this block never
            # recommends itself (-1 entries never match any block).
            if ids_block is None:
                inside = (exclude >= start) & (exclude < stop)
                positions = exclude[inside] - start
            else:
                found = np.searchsorted(ids_block, exclude)
                found = np.minimum(found, len(ids_block) - 1)
                inside = ids_block[found] == exclude
                positions = found[inside]
            block_scores[positions, np.flatnonzero(inside)] = -np.inf
            bs = stop - start
            take = min(k_eff, bs)
            part = self._select_top(block_scores, take)
            if ids_block is None:
                cand_ids.append(part + start)
            else:
                cand_ids.append(ids_block[part])
            cand_scores.append(
                np.take_along_axis(block_scores, part, axis=0)
            )
        pool_ids = np.concatenate(cand_ids, axis=0)
        pool_scores = np.concatenate(cand_scores, axis=0)
        out_k = min(k_eff, len(pool_ids))
        out_ids = np.empty((out_k, m), dtype=np.int64)
        out_scores = np.empty((out_k, m), dtype=np.float64)
        for column in range(m):
            order = np.lexsort(
                (pool_ids[:, column], -pool_scores[:, column])
            )[:out_k]
            out_ids[:, column] = pool_ids[order, column]
            out_scores[:, column] = pool_scores[order, column]
        return out_ids, out_scores
