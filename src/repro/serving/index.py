"""Blocked top-k recommendation index with a generation-keyed LRU cache.

Top-k over the embedding matrix is the serving analogue of the paper's
similarity-driven downstream tasks: "who should node ``u`` connect to
next" is ``argmax_v f(u) . f(v)`` (§IV-B edge scoring without the
classifier head).  :class:`RecommendationIndex` evaluates it in blocks
of rows — bounded peak memory regardless of graph size, the same reason
the walk kernel processes CSR slices — and memoizes per-``(node, k)``
results in an LRU cache.

Cache entries are valid for exactly one
:class:`~repro.serving.store.EmbeddingSnapshot` *version*: the first
query after a publish observes the version bump and drops the whole
cache, so a stale top-k can never be served once new embeddings are
published (the freshness contract the serving tests pin down).

Work accounting: ``serving.index.gemm_rows`` counts row-dot-products
evaluated; a warm cache hit adds exactly zero to it.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

import numpy as np

from repro.errors import ServingError
from repro.observability import get_recorder
from repro.serving.store import EmbeddingSnapshot, EmbeddingStore

METRIC_CHOICES = ("dot", "cosine")

#: One cached result: (ids desc by score, scores) — both read-only.
TopK = tuple[np.ndarray, np.ndarray]


class RecommendationIndex:
    """Cached blocked top-k over the currently served embeddings."""

    def __init__(
        self,
        store: EmbeddingStore,
        cache_size: int = 4096,
        block_size: int = 8192,
        metric: str = "dot",
    ) -> None:
        if cache_size < 0:
            raise ServingError(f"cache_size must be >= 0, got {cache_size}")
        if block_size < 1:
            raise ServingError(f"block_size must be >= 1, got {block_size}")
        if metric not in METRIC_CHOICES:
            raise ServingError(
                f"unknown metric {metric!r}; options: {list(METRIC_CHOICES)}"
            )
        self.store = store
        self.cache_size = cache_size
        self.block_size = block_size
        self.metric = metric
        self._lock = threading.Lock()
        self._cache: OrderedDict[tuple[int, int], TopK] = OrderedDict()
        self._cache_version: int = -1

    # ------------------------------------------------------------------
    # Cache plumbing
    # ------------------------------------------------------------------
    def _sync_version(self, snapshot: EmbeddingSnapshot) -> None:
        """Drop every entry computed against an older snapshot.

        Caller must hold the lock.  Runs on the query path, so the
        first read after a publish — not the publish itself — pays the
        O(1) clear; publishes stay wait-free.  Only ever advances: a
        reader holding an older snapshot than the cache must not roll
        the cache back to it.
        """
        if self._cache_version < snapshot.version:
            self._cache.clear()
            self._cache_version = snapshot.version

    def cached(self, node: int, k: int,
               snapshot: EmbeddingSnapshot | None = None) -> TopK | None:
        """Return the cached result for ``(node, k)`` or None.

        Only results computed against ``snapshot``'s version qualify
        (the *current* store snapshot when omitted); a hit refreshes
        LRU recency and counts as ``serving.index.cache_hits``.
        Passing an explicit snapshot pins a multi-request batch to one
        version: a publish landing mid-batch cannot mix newer cache
        hits into a batch computed against the older snapshot.
        """
        if snapshot is None:
            snapshot = self.store.snapshot()
        with self._lock:
            self._sync_version(snapshot)
            if self._cache_version != snapshot.version:
                # The cache has moved past this snapshot's version; its
                # entries would answer from a different generation.
                return None
            hit = self._cache.get((node, k))
            if hit is None:
                return None
            self._cache.move_to_end((node, k))
        get_recorder().counter("serving.index.cache_hits")
        return hit

    def _fill(self, snapshot: EmbeddingSnapshot, node: int, k: int,
              result: TopK) -> None:
        with self._lock:
            if self._cache_version != snapshot.version or self.cache_size == 0:
                return
            self._cache[(node, k)] = result
            self._cache.move_to_end((node, k))
            while len(self._cache) > self.cache_size:
                self._cache.popitem(last=False)
                get_recorder().counter("serving.index.cache_evictions")

    def __len__(self) -> int:
        with self._lock:
            return len(self._cache)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def top_k(self, node: int, k: int) -> TopK:
        """Top-``k`` nodes for ``node`` (self excluded), best first."""
        hit = self.cached(node, k)
        if hit is not None:
            return hit
        return self.top_k_batch([(node, k)])[0]

    def top_k_batch(self, requests: list[tuple[int, int]]) -> list[TopK]:
        """Serve many ``(node, k)`` requests with shared block scans.

        Cache hits are answered in place; the remaining distinct
        requests of each ``k`` share one blocked pass over the matrix,
        which is what makes micro-batched top-k amortize.  The whole
        batch answers from the one snapshot taken here — cache lookups
        are pinned to its version, so a publish racing the batch can
        never mix results from two embedding generations in one
        response.
        """
        snapshot = self.store.snapshot()
        rec = get_recorder()
        results: dict[int, TopK] = {}
        misses: dict[int, list[int]] = {}
        for i, (node, k) in enumerate(requests):
            self._validate(snapshot, node, k)
            hit = self.cached(node, k, snapshot)
            if hit is not None:
                results[i] = hit
            else:
                misses.setdefault(k, []).append(i)
        for k, indices in misses.items():
            nodes = []
            for i in indices:
                node = requests[i][0]
                if node not in nodes:
                    nodes.append(node)
            rec.counter("serving.index.cache_misses", len(nodes))
            ids, scores = self._compute_many(
                snapshot, np.asarray(nodes, dtype=np.int64), k
            )
            computed: dict[int, TopK] = {}
            for column, node in enumerate(nodes):
                result = (ids[:, column].copy(), scores[:, column].copy())
                result[0].setflags(write=False)
                result[1].setflags(write=False)
                computed[node] = result
                self._fill(snapshot, node, k, result)
            for i in indices:
                results[i] = computed[requests[i][0]]
        return [results[i] for i in range(len(requests))]

    def _validate(self, snapshot: EmbeddingSnapshot, node: int,
                  k: int) -> None:
        if not 0 <= node < snapshot.num_nodes:
            raise ServingError(
                f"node {node} out of range [0, {snapshot.num_nodes})"
            )
        if k < 1:
            raise ServingError(f"k must be >= 1, got {k}")

    # ------------------------------------------------------------------
    def _compute_many(self, snapshot: EmbeddingSnapshot,
                      nodes: np.ndarray, k: int
                      ) -> tuple[np.ndarray, np.ndarray]:
        """Blocked top-k for ``m`` distinct query nodes at once.

        Returns ``(ids, scores)`` of shape ``(k_eff, m)`` with each
        column sorted best-first (ties broken by lower id).  Peak
        memory is O(block_size * m) however large the matrix is.
        """
        rec = get_recorder()
        matrix = snapshot.matrix
        n = snapshot.num_nodes
        m = len(nodes)
        k_eff = min(k, n - 1)
        if k_eff <= 0:
            empty = np.empty((0, m), dtype=np.int64)
            return empty, np.empty((0, m), dtype=np.float64)
        queries = matrix[nodes].T  # (d, m)
        if self.metric == "cosine":
            qnorm = np.where(snapshot.norms[nodes] == 0.0, 1.0,
                             snapshot.norms[nodes])
        cand_ids: list[np.ndarray] = []
        cand_scores: list[np.ndarray] = []
        for start in range(0, n, self.block_size):
            stop = min(n, start + self.block_size)
            block_scores = matrix[start:stop] @ queries  # (bs, m)
            rec.counter("serving.index.gemm_rows", (stop - start) * m)
            if self.metric == "cosine":
                norms = np.where(snapshot.norms[start:stop] == 0.0, 1.0,
                                 snapshot.norms[start:stop])
                block_scores /= norms[:, None] * qnorm[None, :]
            # Self-exclusion: a query node inside this block never
            # recommends itself.
            inside = (nodes >= start) & (nodes < stop)
            block_scores[nodes[inside] - start, np.flatnonzero(inside)] = (
                -np.inf
            )
            bs = stop - start
            take = min(k_eff, bs)
            if take < bs:
                part = np.argpartition(block_scores, bs - take,
                                       axis=0)[bs - take:]
            else:
                part = np.broadcast_to(
                    np.arange(bs, dtype=np.int64)[:, None], (bs, m)
                )
            cand_ids.append(part + start)
            cand_scores.append(
                np.take_along_axis(block_scores, part, axis=0)
            )
        pool_ids = np.concatenate(cand_ids, axis=0)
        pool_scores = np.concatenate(cand_scores, axis=0)
        out_ids = np.empty((k_eff, m), dtype=np.int64)
        out_scores = np.empty((k_eff, m), dtype=np.float64)
        for column in range(m):
            order = np.lexsort(
                (pool_ids[:, column], -pool_scores[:, column])
            )[:k_eff]
            out_ids[:, column] = pool_ids[order, column]
            out_scores[:, column] = pool_scores[order, column]
        return out_ids, out_scores
