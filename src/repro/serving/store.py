"""Versioned embedding snapshots with atomic swap semantics.

The deployment story of §VII-B ends at "re-run the pipeline"; a serving
system additionally needs the *result* of each run available to query
threads while the next run is in flight.  :class:`EmbeddingStore` is
that handoff point:

- :meth:`EmbeddingStore.publish` installs an immutable
  :class:`EmbeddingSnapshot` (a read-only copy of the embedding matrix
  plus precomputed row norms) under a single reference assignment — the
  swap is atomic, writers never wait for readers;
- :meth:`EmbeddingStore.snapshot` hands readers the current snapshot.
  A reader that holds on to a snapshot keeps reading *consistent but
  stale* embeddings until it re-fetches — readers never block a swap
  and never observe a half-written matrix;
- snapshots are keyed by the source
  :class:`~repro.graph.dynamic.DynamicTemporalGraph` generation plus a
  store-local monotone ``version`` (every publish bumps the version,
  even a re-publish of the same generation after more training).

:class:`~repro.tasks.incremental.IncrementalEmbedder` publishes here
after every ``rebuild()``/``update()`` when constructed with a
``store=``, which is the ingest half of the online loop.

:meth:`EmbeddingStore.subscribe` is the publish hook derived systems
attach to; the ANN layer (:class:`~repro.serving.ann.IvfIndexManager`)
uses it to rebuild its per-version IVF index asynchronously after every
publish — the snapshot *version* is the pinning token that keeps an
index generation from ever being paired with a different matrix
generation.
"""

from __future__ import annotations

import logging
import threading
import time
from typing import Callable

import numpy as np

from repro.errors import ServingError
from repro.observability import get_recorder

log = logging.getLogger(__name__)


class EmbeddingSnapshot:
    """One immutable published embedding matrix.

    ``matrix`` and ``norms`` are read-only arrays (``writeable=False``);
    ``generation`` is the graph generation the embeddings were trained
    through, ``version`` the store-local publish counter, and
    ``published_at`` a monotonic timestamp (for staleness gauges).
    """

    __slots__ = ("matrix", "norms", "generation", "version", "published_at")

    def __init__(self, matrix: np.ndarray, norms: np.ndarray,
                 generation: int, version: int, published_at: float) -> None:
        self.matrix = matrix
        self.norms = norms
        self.generation = generation
        self.version = version
        self.published_at = published_at

    @property
    def num_nodes(self) -> int:
        """Number of embedded nodes."""
        return self.matrix.shape[0]

    @property
    def dim(self) -> int:
        """Embedding dimensionality."""
        return self.matrix.shape[1]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"EmbeddingSnapshot(num_nodes={self.num_nodes}, "
                f"dim={self.dim}, generation={self.generation}, "
                f"version={self.version})")


class EmbeddingStore:
    """Atomically-swapped, versioned embedding snapshots."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._publish_cv = threading.Condition(self._lock)
        self._current: EmbeddingSnapshot | None = None
        self._version = 0
        self._subscribers: list[Callable[[EmbeddingSnapshot], None]] = []

    # ------------------------------------------------------------------
    def publish(self, matrix: np.ndarray, generation: int
                ) -> EmbeddingSnapshot:
        """Install a new snapshot; returns it.

        The matrix is copied (so the trainer may keep mutating its own
        buffer) and frozen.  Publishing a generation older than the
        current snapshot's raises :class:`ServingError` — concurrent
        trainers must hand results over in generation order; equal
        generations are fine (continued training on an unchanged graph).
        """
        frozen = np.array(matrix, dtype=np.float64, copy=True, order="C")
        if frozen.ndim != 2 or frozen.shape[0] < 1:
            raise ServingError(
                "published embeddings must be a non-empty 2-D matrix, got "
                f"shape {frozen.shape}"
            )
        norms = np.linalg.norm(frozen, axis=1)
        frozen.setflags(write=False)
        norms.setflags(write=False)
        with self._lock:
            current = self._current
            if current is not None and generation < current.generation:
                raise ServingError(
                    f"stale publish: generation {generation} is older than "
                    f"the served generation {current.generation}"
                )
            self._version += 1
            snapshot = EmbeddingSnapshot(
                frozen, norms, int(generation), self._version,
                time.monotonic(),
            )
            # The swap: one reference assignment, atomic under the GIL.
            # Readers holding the old snapshot keep a consistent view.
            self._current = snapshot
            subscribers = list(self._subscribers)
            self._publish_cv.notify_all()
        rec = get_recorder()
        rec.counter("serving.store.publishes")
        rec.gauge("serving.store.generation", snapshot.generation)
        rec.gauge("serving.store.version", snapshot.version)
        for callback in subscribers:
            try:
                callback(snapshot)
            except Exception:
                # A broken subscriber must not abort the publisher
                # mid-loop (starving later subscribers) once the
                # snapshot is already installed — same isolation as
                # DynamicTemporalGraph's generation hooks.
                rec.counter("serving.store.subscriber_errors")
                log.warning(
                    "publish subscriber %r raised on version %d",
                    callback, snapshot.version, exc_info=True,
                )
        return snapshot

    # ------------------------------------------------------------------
    def snapshot(self) -> EmbeddingSnapshot:
        """The currently served snapshot (never blocks on a publisher)."""
        snapshot = self._current
        if snapshot is None:
            raise ServingError(
                "no embeddings published yet; run the embedder (e.g. "
                "IncrementalEmbedder.rebuild with store=) first"
            )
        return snapshot

    @property
    def empty(self) -> bool:
        """True until the first :meth:`publish`."""
        return self._current is None

    @property
    def version(self) -> int:
        """Version of the current snapshot (0 while empty)."""
        snapshot = self._current
        return snapshot.version if snapshot is not None else 0

    @property
    def generation(self) -> int:
        """Generation of the current snapshot (-1 while empty)."""
        snapshot = self._current
        return snapshot.generation if snapshot is not None else -1

    # ------------------------------------------------------------------
    def subscribe(self, callback: Callable[[EmbeddingSnapshot], None]
                  ) -> None:
        """Run ``callback(snapshot)`` after every publish (writer thread,
        outside the store lock).

        An exception from one callback is logged and counted
        (``serving.store.subscriber_errors``) but neither skips the
        remaining callbacks nor propagates into the publishing thread.
        """
        with self._lock:
            self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[EmbeddingSnapshot], None]
                    ) -> bool:
        """Deregister ``callback``; returns False when it wasn't registered.

        Idempotent, so shutdown paths (e.g. a sharded publisher's
        ``detach()``) may call it unconditionally.
        """
        with self._lock:
            try:
                self._subscribers.remove(callback)
                return True
            except ValueError:
                return False

    def wait_for_generation(self, generation: int,
                            timeout: float | None = None) -> bool:
        """Block until a snapshot with ``generation`` or newer is served.

        Returns False on timeout.  Used by tests and by load generators
        that must observe a post-append publish before asserting
        freshness.
        """
        deadline = (time.monotonic() + timeout) if timeout is not None else None
        with self._publish_cv:
            while (self._current is None
                   or self._current.generation < generation):
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._publish_cv.wait(remaining)
            return True
