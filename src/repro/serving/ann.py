"""IVF approximate top-k: sub-linear queries over published embeddings.

The exact :class:`~repro.serving.index.RecommendationIndex` scans every
row per query — O(nodes) GEMM work, which caps the "heavy traffic"
scenario at laptop node counts.  This module adds the classic inverted-
file (IVF) alternative in pure numpy:

- **build** (once per published snapshot): a coarse quantizer — k-means
  cells fit with deterministic seeded Lloyd iterations on a training
  sample, then one blocked assignment pass puts every row into exactly
  one cell (a partition; ids ascending within each cell);
- **query**: rank the ``nlist`` centroids against the query embedding,
  probe the best ``nprobe`` cells, and score only their member rows
  exactly — the same blocked scoring/tie-break code as the brute-force
  oracle, restricted to the candidate rows.  Expected work per query is
  ``nlist + n * nprobe / nlist`` rows instead of ``n``.

Correctness contract (pinned by ``tests/test_serving_ann.py``):

- ``nprobe >= nlist`` probes every cell; because the cells partition the
  id space, the candidate list is exactly ``0..n-1`` and the result is
  *bit-identical* to the exact path — same scores, same lower-id
  tie-breaks;
- partial probes trade recall for speed; the brute-force path stays the
  oracle (``bench_ann_topk`` measures recall@k against it) and remains
  the automatic fallback for small stores, ``k`` exhausting the indexed
  rows, and queries racing an in-progress build.

Version pinning: an :class:`IvfIndex` is immutable and belongs to
exactly one :class:`~repro.serving.store.EmbeddingSnapshot` version.
:class:`IvfIndexManager` subscribes to the store's publish hook and
(re)builds asynchronously; a query pins one snapshot, and the manager
hands back an index only when ``index.version == snapshot.version`` —
so a publish racing a build or a query can never pair one generation's
cell lists with another generation's matrix (the same invariant the
LRU cache enforces via version-keyed entries).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

import numpy as np

from repro.errors import ServingError
from repro.observability import get_recorder
from repro.serving.store import EmbeddingSnapshot, EmbeddingStore

#: Index modes a query may request (``ServingFrontend(index=...)`` and
#: the per-query override).
INDEX_CHOICES = ("exact", "ivf")

_ASSIGN_BLOCK = 16_384  # rows per blocked cell-assignment GEMM


@dataclass(frozen=True)
class IvfConfig:
    """Knobs of the IVF coarse quantizer.

    ``nlist=None`` auto-sizes the cell count to ``~sqrt(n)`` at build
    time.  ``nprobe`` cells are scanned per query (``nprobe >= nlist``
    degenerates to an exact full scan).  ``train_iters`` Lloyd
    iterations run over at most ``train_sample`` seeded-sampled rows.
    Stores smaller than ``min_index_nodes`` are never indexed — the
    exact path is already fast there and stays the automatic fallback.
    ``recall_sample_every > 0`` shadow-checks every N-th ANN query
    against the oracle and records the observed recall
    (``serving.ann.recall_at_k``).
    """

    nlist: int | None = None
    nprobe: int = 8
    train_iters: int = 8
    train_sample: int = 16_384
    min_index_nodes: int = 512
    seed: int = 0
    recall_sample_every: int = 0

    def __post_init__(self) -> None:
        if self.nlist is not None and self.nlist < 1:
            raise ServingError(f"nlist must be >= 1, got {self.nlist}")
        if self.nprobe < 1:
            raise ServingError(f"nprobe must be >= 1, got {self.nprobe}")
        if self.train_iters < 0:
            raise ServingError(
                f"train_iters must be >= 0, got {self.train_iters}"
            )
        if self.train_sample < 1:
            raise ServingError(
                f"train_sample must be >= 1, got {self.train_sample}"
            )
        if self.min_index_nodes < 1:
            raise ServingError(
                f"min_index_nodes must be >= 1, got {self.min_index_nodes}"
            )
        if self.recall_sample_every < 0:
            raise ServingError(
                "recall_sample_every must be >= 0, got "
                f"{self.recall_sample_every}"
            )


def _guard_norms(norms: np.ndarray) -> np.ndarray:
    """Zero norms -> 1 so degenerate rows divide to 0, never NaN."""
    return np.where(norms == 0.0, 1.0, norms)


def _nearest_cell(points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Blocked argmin-L2 assignment (ties -> lowest cell id).

    ``argmin ||x - c||^2 == argmax (x.c - ||c||^2 / 2)`` — one GEMM per
    block instead of materializing an ``(n, nlist)`` distance matrix.
    """
    half_sq = 0.5 * np.einsum("cd,cd->c", centroids, centroids)
    out = np.empty(len(points), dtype=np.int64)
    for start in range(0, len(points), _ASSIGN_BLOCK):
        stop = min(len(points), start + _ASSIGN_BLOCK)
        affinity = points[start:stop] @ centroids.T
        affinity -= half_sq[None, :]
        out[start:stop] = np.argmax(affinity, axis=1)
    return out


class IvfIndex:
    """Immutable IVF cell structure for exactly one snapshot version."""

    __slots__ = (
        "snapshot", "version", "metric", "nlist", "nprobe", "centroids",
        "cells", "build_seconds", "nbytes", "_rank_centroids",
    )

    def __init__(self, snapshot: EmbeddingSnapshot, metric: str,
                 nprobe: int, centroids: np.ndarray,
                 cells: list[np.ndarray], build_seconds: float) -> None:
        self.snapshot = snapshot
        self.version = snapshot.version
        self.metric = metric
        self.nlist = len(cells)
        self.nprobe = min(nprobe, self.nlist)
        self.centroids = centroids
        self.cells = cells
        self.build_seconds = build_seconds
        self.nbytes = centroids.nbytes + sum(c.nbytes for c in cells)
        if metric == "cosine":
            cnorm = _guard_norms(np.linalg.norm(centroids, axis=1))
            self._rank_centroids = centroids / cnorm[:, None]
        else:
            self._rank_centroids = centroids

    @property
    def num_indexed(self) -> int:
        """Rows covered by the cells (the whole snapshot: a partition)."""
        return self.snapshot.num_nodes

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, snapshot: EmbeddingSnapshot, config: IvfConfig,
              metric: str = "dot") -> "IvfIndex":
        """Deterministic seeded build: same snapshot -> same cells."""
        start = time.perf_counter()
        n = snapshot.num_nodes
        if metric == "cosine":
            # Cluster directions, not magnitudes; zero rows stay at the
            # origin and land in whichever cell argmax ties lowest.
            points = snapshot.matrix / _guard_norms(snapshot.norms)[:, None]
        else:
            points = snapshot.matrix
        nlist = config.nlist
        if nlist is None:
            nlist = int(round(float(n) ** 0.5))
        nlist = max(1, min(nlist, n))

        rng = np.random.default_rng(config.seed)
        sample_size = min(n, max(config.train_sample, nlist))
        if sample_size < n:
            sample_ids = np.sort(rng.choice(n, size=sample_size,
                                            replace=False))
            train = points[sample_ids]
        else:
            train = points
        init = np.sort(rng.choice(len(train), size=nlist, replace=False))
        centroids = np.array(train[init], dtype=np.float64, copy=True)

        for _ in range(config.train_iters):
            assign = _nearest_cell(train, centroids)
            sums = np.zeros_like(centroids)
            np.add.at(sums, assign, train)
            counts = np.bincount(assign, minlength=nlist)
            filled = counts > 0
            # Empty cells keep their previous centroid (and may stay
            # empty — probing one yields zero candidates, an edge case
            # the query path must tolerate).
            centroids[filled] = sums[filled] / counts[filled, None]

        assign = _nearest_cell(points, centroids)
        order = np.argsort(assign, kind="stable")  # ids ascend per cell
        bounds = np.searchsorted(assign[order], np.arange(nlist + 1))
        cells = []
        for j in range(nlist):
            cell = np.ascontiguousarray(order[bounds[j]:bounds[j + 1]])
            cell.setflags(write=False)
            cells.append(cell)
        centroids.setflags(write=False)
        return cls(snapshot, metric, config.nprobe, centroids, cells,
                   time.perf_counter() - start)

    # ------------------------------------------------------------------
    def probe_order(self, node: int) -> np.ndarray:
        """All cell ids best-first for ``node`` (ties -> lower cell id)."""
        return self.probe_order_for(self.snapshot.matrix[node])

    def probe_order_for(self, query: np.ndarray) -> np.ndarray:
        """All cell ids best-first for a raw query vector.

        The sharded tier routes mostly *remote* query nodes through a
        shard's index — the query row lives on another shard, so the
        probe ranks cells against the shipped vector instead of a local
        row.  ``probe_order(node)`` is exactly this on the node's own
        row.
        """
        affinity = self._rank_centroids @ np.asarray(query,
                                                     dtype=np.float64)
        return np.lexsort((np.arange(self.nlist), -affinity))

    def candidate_rows(self, node: int, nprobe: int | None = None
                       ) -> tuple[np.ndarray, int]:
        """Sorted candidate row ids from the best ``nprobe`` cells.

        Returns ``(row_ids ascending, cells_probed)``.  With
        ``nprobe >= nlist`` the cells' union is exactly ``0..n-1`` (the
        cells partition the id space), which is what makes exact-mode
        IVF bit-identical to the brute-force path.
        """
        return self.candidate_rows_for(self.snapshot.matrix[node], nprobe)

    def candidate_rows_for(self, query: np.ndarray,
                           nprobe: int | None = None
                           ) -> tuple[np.ndarray, int]:
        """:meth:`candidate_rows` for a raw query vector."""
        nprobe = self.nprobe if nprobe is None else nprobe
        nprobe = max(1, min(nprobe, self.nlist))
        probed = self.probe_order_for(query)[:nprobe]
        candidates = np.concatenate([self.cells[j] for j in probed])
        candidates.sort()
        return candidates, int(nprobe)


class IvfIndexManager:
    """Builds one :class:`IvfIndex` per published snapshot, off-thread.

    Subscribes to the store's publish hook.  Builds coalesce: while one
    build runs, newer publishes overwrite the single pending slot, so a
    burst of publishes costs one (latest) rebuild, and intermediate
    versions are skipped.  :meth:`index_for` only returns an index whose
    version matches the caller's pinned snapshot — a stale or mid-build
    index is never paired with a newer matrix.
    """

    def __init__(self, store: EmbeddingStore,
                 config: IvfConfig | None = None,
                 metric: str = "dot") -> None:
        self.store = store
        self.config = config or IvfConfig()
        self.metric = metric
        self._lock = threading.Lock()
        self._cv = threading.Condition(self._lock)
        self._index: IvfIndex | None = None
        self._pending: EmbeddingSnapshot | None = None
        self._thread: threading.Thread | None = None
        self._closed = False
        store.subscribe(self._on_publish)
        if not store.empty:
            self._on_publish(store.snapshot())

    # ------------------------------------------------------------------
    def _on_publish(self, snapshot: EmbeddingSnapshot) -> None:
        if snapshot.num_nodes < self.config.min_index_nodes:
            # Small store: stay on the exact path (cold fallback).
            get_recorder().counter("serving.ann.skipped_small")
            return
        with self._lock:
            if self._closed:
                return
            self._pending = snapshot
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._run, name="ann-index-build", daemon=True
                )
                self._thread.start()

    def _run(self) -> None:
        while True:
            with self._lock:
                snapshot, self._pending = self._pending, None
                if snapshot is None or self._closed:
                    self._thread = None
                    self._cv.notify_all()
                    return
            rec = get_recorder()
            try:
                index = IvfIndex.build(snapshot, self.config, self.metric)
            except Exception:  # pragma: no cover - defensive: keep serving
                rec.counter("serving.ann.build_errors")
                continue
            with self._lock:
                # Monotone install: a slow build can never roll back a
                # newer index that somehow landed first.
                if self._index is None or index.version > self._index.version:
                    self._index = index
                self._cv.notify_all()
            rec.counter("serving.ann.builds")
            rec.observe("serving.ann.build_seconds", index.build_seconds)
            rec.gauge("serving.ann.bytes", index.nbytes)
            rec.gauge("serving.ann.version", index.version)

    # ------------------------------------------------------------------
    def index_for(self, snapshot: EmbeddingSnapshot) -> IvfIndex | None:
        """The index matching ``snapshot``'s version, or None.

        None means fall back to the exact path: no build yet, a build
        still in flight, or the store is too small to index.
        """
        index = self._index  # atomic reference read
        if index is not None and index.version == snapshot.version:
            return index
        return None

    @property
    def current(self) -> IvfIndex | None:
        """Latest installed index regardless of the served version."""
        return self._index

    def wait_ready(self, version: int | None = None,
                   timeout: float | None = None) -> bool:
        """Block until an index for ``version`` (default: the store's
        current version) or newer is installed; False on timeout."""
        if version is None:
            version = self.store.version
        deadline = (time.monotonic() + timeout) if timeout is not None else None
        with self._cv:
            while self._index is None or self._index.version < version:
                if self._closed:
                    return False
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._cv.wait(remaining)
            return True

    def close(self) -> None:
        """Stop accepting builds (the daemon builder drains and exits)."""
        with self._lock:
            self._closed = True
            self._pending = None
            self._cv.notify_all()
