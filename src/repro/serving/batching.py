"""Micro-batching request scheduler.

The paper's word2vec analysis (Fig. 5) shows the same pathology a
per-request serving path has: lots of tiny kernels, each paying fixed
launch overhead.  Batching sentences amortized the kernel launches
there; :class:`BatchScheduler` amortizes per-request numpy/Python
overhead here by coalescing concurrent requests into one vectorized
evaluation.

Two knobs bound the batching trade-off:

- ``max_batch_size`` — flush as soon as this many requests are pending
  (throughput bound);
- ``max_delay`` — flush at most this many seconds after the *oldest*
  pending request arrived (latency bound).

Requests are submitted from any thread and resolved through
``concurrent.futures.Future``; one worker thread drains the queue and
runs the processing callback.  Flush triggers, batch-size distribution,
and queue-wait times land in the ambient recorder
(``serving.batch.*``).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import Any, Callable, Sequence

from repro.errors import ServingError
from repro.observability import get_recorder


class BatchFuture:
    """Lightweight future resolved by a batch flush.

    ``concurrent.futures.Future`` allocates a private Condition per
    request and notifies it per ``set_result`` — measurable per-request
    overhead that micro-batching exists to amortize.  ``BatchFuture``
    instead shares its scheduler's result Condition: one flush resolves
    the whole batch under a single lock acquisition and wakes every
    waiter with a single ``notify_all``.  The lock-free ``_done`` fast
    path means a client that checks after the flush never touches the
    lock at all (safe under the GIL: ``_result``/``_exc`` are written
    before ``_done``).
    """

    __slots__ = ("_cv", "_done", "_result", "_exc")

    def __init__(self, cv: threading.Condition | None) -> None:
        self._cv = cv
        self._done = False
        self._result: Any = None
        self._exc: BaseException | None = None

    @classmethod
    def resolved(cls, result: Any) -> "BatchFuture":
        """An already-resolved future (the cache-hit fast path)."""
        future = cls(None)
        future._result = result
        future._done = True
        return future

    # Resolution happens inside the scheduler, which holds the shared
    # condition for the whole batch and notifies once afterwards.
    def _set_result(self, result: Any) -> None:
        self._result = result
        self._done = True

    def _set_exception(self, exc: BaseException) -> None:
        self._exc = exc
        self._done = True

    def done(self) -> bool:
        """True once a result or exception is available."""
        return self._done

    def result(self, timeout: float | None = None) -> Any:
        """Block until resolved; returns the result or raises."""
        if not self._done:
            if self._cv is None:
                raise ServingError("unresolved BatchFuture has no condition")
            deadline = (None if timeout is None
                        else time.monotonic() + timeout)
            with self._cv:
                while not self._done:
                    remaining = (None if deadline is None
                                 else deadline - time.monotonic())
                    if remaining is not None and remaining <= 0:
                        raise FutureTimeoutError()
                    self._cv.wait(remaining)
        if self._exc is not None:
            raise self._exc
        return self._result


class _Pending:
    """One enqueued request."""

    __slots__ = ("payload", "future", "enqueued_at")

    def __init__(self, payload: Any, cv: threading.Condition) -> None:
        self.payload = payload
        self.future = BatchFuture(cv)
        self.enqueued_at = time.monotonic()


class BatchScheduler:
    """Coalesces requests into micro-batches for one processing callback.

    ``process`` receives the list of payloads of one batch (length 1 to
    ``max_batch_size``) and must return one result per payload, in
    order.  An exception from ``process`` fails every future of that
    batch; the scheduler itself stays up.
    """

    def __init__(
        self,
        process: Callable[[list[Any]], Sequence[Any]],
        max_batch_size: int = 64,
        max_delay: float = 0.002,
        name: str = "requests",
    ) -> None:
        if max_batch_size < 1:
            raise ServingError(
                f"max_batch_size must be >= 1, got {max_batch_size}"
            )
        if max_delay < 0:
            raise ServingError(f"max_delay must be >= 0, got {max_delay}")
        self._process = process
        self.max_batch_size = max_batch_size
        self.max_delay = max_delay
        self.name = name
        self._queue: deque[_Pending] = deque()
        self._cv = threading.Condition()
        # Separate condition for result waiters, so a flush's single
        # notify_all never contends with queue waits.
        self._result_cv = threading.Condition()
        self._closed = False
        self._worker: threading.Thread | None = None

    # ------------------------------------------------------------------
    def start(self) -> "BatchScheduler":
        """Start the drain thread (idempotent); returns self."""
        with self._cv:
            if self._closed:
                raise ServingError(f"scheduler {self.name!r} is closed")
            if self._worker is None:
                self._worker = threading.Thread(
                    target=self._run, daemon=True,
                    name=f"batch-{self.name}",
                )
                self._worker.start()
        return self

    def close(self) -> None:
        """Drain remaining requests, then stop the worker (idempotent)."""
        with self._cv:
            if self._closed:
                return
            self._closed = True
            self._cv.notify_all()
            worker = self._worker
        if worker is not None:
            worker.join()

    def __enter__(self) -> "BatchScheduler":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    def submit(self, payload: Any) -> BatchFuture:
        """Enqueue one request; returns its future."""
        pending = _Pending(payload, self._result_cv)
        with self._cv:
            if self._closed:
                raise ServingError(
                    f"scheduler {self.name!r} is closed; cannot submit"
                )
            if self._worker is None:
                raise ServingError(
                    f"scheduler {self.name!r} not started; call start()"
                )
            self._queue.append(pending)
            # Wake the worker only at the transitions it acts on: first
            # request (it may be idle) and a full batch (it may be
            # sleeping out max_delay).  Intermediate arrivals would only
            # wake it to recount and re-sleep.
            depth = len(self._queue)
            if depth == 1 or depth >= self.max_batch_size:
                self._cv.notify()
        return pending.future

    # ------------------------------------------------------------------
    def _run(self) -> None:
        while True:
            with self._cv:
                while not self._queue and not self._closed:
                    self._cv.wait()
                if not self._queue:
                    return  # closed and drained
                # Wait for a full batch, but no longer than max_delay
                # past the oldest request's arrival.
                deadline = self._queue[0].enqueued_at + self.max_delay
                while (len(self._queue) < self.max_batch_size
                       and not self._closed):
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._cv.wait(remaining)
                batch = [
                    self._queue.popleft()
                    for _ in range(min(len(self._queue),
                                       self.max_batch_size))
                ]
                if len(batch) >= self.max_batch_size:
                    trigger = "size"
                elif self._closed:
                    trigger = "close"
                else:
                    trigger = "delay"
            self._execute(batch, trigger)

    def _execute(self, batch: list[_Pending], trigger: str) -> None:
        rec = get_recorder()
        if rec.enabled:
            now = time.monotonic()
            rec.counter(f"serving.batch.flush_{trigger}")
            rec.observe("serving.batch.size", len(batch))
            for pending in batch:
                rec.observe("serving.batch.wait_s",
                            now - pending.enqueued_at)
        try:
            results = self._process([p.payload for p in batch])
            if len(results) != len(batch):
                raise ServingError(
                    f"scheduler {self.name!r}: process returned "
                    f"{len(results)} results for {len(batch)} requests"
                )
        except Exception as exc:  # noqa: BLE001 - forwarded to futures
            with self._result_cv:
                for pending in batch:
                    pending.future._set_exception(exc)
                self._result_cv.notify_all()
            return
        # One lock acquisition and one wakeup resolve the whole batch —
        # the per-request notify cost is what this scheduler amortizes.
        with self._result_cv:
            for pending, result in zip(batch, results):
                pending.future._set_result(result)
            self._result_cv.notify_all()
