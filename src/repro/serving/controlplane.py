"""Control-plane autoscaler: self-healing policy over the sharded tier.

PR 8/9 gave the sharded tier every *mechanism* — replication,
transparent failover, live :meth:`~repro.serving.sharding
.ShardedFrontend.rebalance` — but no *policy*: a killed replica stayed
dead until an operator intervened and nothing reacted to per-shard load
skew.  This module is the missing supervisor, the router-side analogue
of the deployment loop "Towards Real-Time Temporal Graph Learning"
keeps running around its ingest → train → serve pipeline:

- **Health sweeps.**  A daemon thread (injectable ``clock``, à la the
  :class:`~repro.stream.queue.TokenBucket` rate limiter, so tests drive
  :meth:`ControlPlane.step` synchronously with a fake clock) checks
  every replica slot each ``health_period``.  A dead slot is respawned
  through :meth:`~repro.serving.sharding.ShardedFrontend
  .respawn_replica`, which re-slices the retained served matrix into
  the replacement under the currently-served version — recovery is
  invisible to readers.  Respawn attempts back off exponentially
  (``respawn_backoff`` × ``backoff_multiplier``^n) and a slot that
  burns ``max_respawns`` attempts trips a circuit breaker: the tier
  stays up degraded (siblings keep answering) instead of fork-looping,
  and ``serving.controlplane.respawn_giveup`` records the give-up.
- **Skew watch.**  Each sweep diffs the router's per-shard
  ``serving.shard.<i>.requests`` counters.  When the max/mean request
  rate crosses ``skew_threshold`` for ``skew_observations`` consecutive
  sweeps (hysteresis) *and* ``rebalance_cooldown`` has elapsed since
  the last move (no flapping), the plane picks a new
  :class:`~repro.serving.sharding.ShardPlan` from the observed rates
  (:meth:`ControlPlane.choose_plan`) and triggers a live rebalance.
  Catalog growth (``nodes_per_shard``) widens the tier the same way.
- **Observability + faults.**  Everything lands under
  ``serving.controlplane.*`` (sweeps, respawns, failures, give-ups,
  skew observations, rebalance decisions, decision latency, recovery
  seconds, a ``dead_workers`` gauge), and two deterministic fault sites
  hook the loop: ``controlplane.health`` fires at the top of each sweep
  in the router, ``controlplane.respawn`` fires inside a respawned
  worker before it serves — a ``crash`` spec there is the crash-loop
  drill the circuit breaker is tested against.

Exercised by ``serve-sim --autoscale`` and the end-to-end
``pipeline-sim`` CLI path; measured by
``benchmarks/bench_stream_to_serve.py``; tested in
``tests/test_serving_controlplane.py`` (``pytest -m shards``).
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import FaultInjected, ServingError
from repro.faults import FaultPlan
from repro.observability import get_recorder
from repro.serving.sharding import PLAN_CHOICES, ShardedFrontend, ShardPlan

_METRIC = "serving.controlplane."


@dataclass(frozen=True)
class ControlPlaneConfig:
    """Policy knobs of the control plane (see ``docs/serving.md``).

    ``health_period`` paces the supervision sweep.  ``respawn_backoff``
    is the delay after a failed respawn attempt, multiplied by
    ``backoff_multiplier`` per consecutive failure; ``max_respawns``
    attempts per slot trips the circuit breaker (the slot stays dead,
    the tier stays up degraded).  A slot that stays healthy for
    ``healthy_reset_s`` earns its attempt budget back, so one transient
    crash a day never accumulates into a give-up.

    ``skew_threshold`` is the max/mean per-shard request-rate ratio
    that counts as skewed; only sweeps with at least ``min_requests``
    new requests are judged (idle tiers are never "skewed").
    ``skew_observations`` consecutive skewed sweeps arm a rebalance
    (hysteresis) and ``rebalance_cooldown`` seconds must separate
    moves (no flapping).  ``nodes_per_shard`` (optional) additionally
    widens the tier when the served catalog outgrows the plan;
    ``max_shards`` caps every growth decision.
    """

    health_period: float = 0.25
    respawn_backoff: float = 0.2
    backoff_multiplier: float = 2.0
    max_respawns: int = 5
    healthy_reset_s: float = 5.0
    skew_threshold: float = 3.0
    skew_observations: int = 3
    rebalance_cooldown: float = 5.0
    min_requests: int = 50
    nodes_per_shard: int | None = None
    max_shards: int = 8

    def __post_init__(self) -> None:
        if self.health_period <= 0:
            raise ServingError(
                f"health_period must be > 0, got {self.health_period}")
        if self.respawn_backoff < 0:
            raise ServingError(
                f"respawn_backoff must be >= 0, got {self.respawn_backoff}")
        if self.backoff_multiplier < 1:
            raise ServingError(
                "backoff_multiplier must be >= 1, got "
                f"{self.backoff_multiplier}")
        if self.max_respawns < 1:
            raise ServingError(
                f"max_respawns must be >= 1, got {self.max_respawns}")
        if self.healthy_reset_s < 0:
            raise ServingError(
                f"healthy_reset_s must be >= 0, got {self.healthy_reset_s}")
        if self.skew_threshold <= 1:
            raise ServingError(
                f"skew_threshold must be > 1, got {self.skew_threshold}")
        if self.skew_observations < 1:
            raise ServingError(
                "skew_observations must be >= 1, got "
                f"{self.skew_observations}")
        if self.rebalance_cooldown < 0:
            raise ServingError(
                "rebalance_cooldown must be >= 0, got "
                f"{self.rebalance_cooldown}")
        if self.min_requests < 1:
            raise ServingError(
                f"min_requests must be >= 1, got {self.min_requests}")
        if self.nodes_per_shard is not None and self.nodes_per_shard < 1:
            raise ServingError(
                "nodes_per_shard must be >= 1, got "
                f"{self.nodes_per_shard}")
        if self.max_shards < 1:
            raise ServingError(
                f"max_shards must be >= 1, got {self.max_shards}")


@dataclass
class _SlotState:
    """Per-(shard, replica) supervision state across sweeps."""

    attempts: int = 0
    first_dead_at: float | None = None
    next_attempt_at: float = 0.0
    alive_since: float | None = None
    gave_up: bool = False


@dataclass
class SweepReport:
    """What one :meth:`ControlPlane.step` sweep did (tests + CLI)."""

    dead_slots: int = 0
    respawned: int = 0
    respawn_failures: int = 0
    gave_up: int = 0
    skewed: bool = False
    skew_ratio: float = 0.0
    rebalanced_to: ShardPlan | None = None
    requests_delta: float = 0.0
    faulted: bool = False
    slots_seen: list[tuple[int, int, bool]] = field(default_factory=list)


class ControlPlane:
    """Supervising loop over a :class:`ShardedFrontend` (policy layer).

    All mutation goes through the frontend's own serialized entry
    points (``respawn_replica``, ``rebalance``), so the plane composes
    with concurrent :class:`~repro.serving.sharding.ShardedPublisher`
    publishes — including stream-driven ``attach()`` fan-out — without
    any locking of its own.  ``step()`` is public and synchronous:
    production paces it from a daemon thread, tests drive it directly
    under an injected ``clock``.
    """

    def __init__(self, frontend: ShardedFrontend,
                 config: ControlPlaneConfig | None = None,
                 fault_plan: FaultPlan | None = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.frontend = frontend
        self.config = config or ControlPlaneConfig()
        self._fault_plan = fault_plan or FaultPlan()
        self._clock = clock
        self._slots: dict[tuple[int, int], _SlotState] = {}
        self._last_table: object | None = None
        self._last_requests: dict[int, float] = {}
        self._skew_streak = 0
        self._last_rebalance_at: float | None = None
        self._sweep_index = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    def start(self) -> "ControlPlane":
        """Start the supervision thread (idempotent); returns self."""
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, daemon=True, name="serving-controlplane")
        self._thread.start()
        return self

    def close(self, timeout: float = 5.0) -> None:
        """Stop the supervision thread (idempotent; bounded join)."""
        self._stop.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout)

    def __enter__(self) -> "ControlPlane":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _run(self) -> None:
        while not self._stop.wait(self.config.health_period):
            try:
                self.step()
            except ServingError:
                # The frontend closed under us (shutdown race) or a
                # rebalance failed outright; the next sweep re-reads
                # the world instead of killing the supervisor.
                if self._stop.is_set():
                    return

    # ------------------------------------------------------------------
    def step(self) -> SweepReport:
        """One supervision sweep: health-check, respawn, watch skew."""
        report = SweepReport()
        frontend = self.frontend
        if not frontend._started or frontend._closed:
            return report
        rec = get_recorder()
        now = self._clock()
        start = time.perf_counter()
        self._sweep_index += 1
        try:
            self._fault_plan.fire("controlplane.health", shard=0,
                                  attempt=self._sweep_index - 1)
        except FaultInjected:
            report.faulted = True
            if rec.enabled:
                rec.counter(_METRIC + "health_faults")
            return report
        table = frontend._table
        if table is not self._last_table:
            # A rebalance replaced the whole worker set: every slot is
            # a different process now, so supervision state restarts.
            self._slots.clear()
            self._last_table = table
        self._sweep_health(table, now, report)
        self._sweep_skew(now, report)
        if rec.enabled:
            rec.counter(_METRIC + "sweeps")
            rec.gauge(_METRIC + "dead_workers", report.dead_slots)
            rec.observe(_METRIC + "decision_latency_s",
                        time.perf_counter() - start)
        return report

    # ------------------------------------------------------------------
    def _sweep_health(self, table, now: float,
                      report: SweepReport) -> None:
        cfg = self.config
        rec = get_recorder()
        for shard_id, group in enumerate(table.groups):
            for replica, client in enumerate(group):
                state = self._slots.setdefault((shard_id, replica),
                                               _SlotState())
                alive = client.alive
                report.slots_seen.append((shard_id, replica, alive))
                if alive:
                    if state.alive_since is None:
                        state.alive_since = now
                    elif (state.attempts and not state.gave_up
                          and now - state.alive_since
                          >= cfg.healthy_reset_s):
                        state.attempts = 0
                        state.first_dead_at = None
                        state.next_attempt_at = 0.0
                    continue
                state.alive_since = None
                if state.gave_up:
                    report.dead_slots += 1
                    continue
                if state.first_dead_at is None:
                    state.first_dead_at = now
                if state.attempts >= cfg.max_respawns:
                    state.gave_up = True
                    report.dead_slots += 1
                    report.gave_up += 1
                    if rec.enabled:
                        rec.counter(_METRIC + "respawn_giveup")
                    continue
                if now < state.next_attempt_at:
                    report.dead_slots += 1
                    continue
                attempt = state.attempts
                state.attempts += 1
                state.next_attempt_at = now + (
                    cfg.respawn_backoff
                    * cfg.backoff_multiplier ** attempt)
                try:
                    respawned = self.frontend.respawn_replica(
                        shard_id, replica,
                        fault_plan=self._fault_plan or None,
                        attempt=attempt)
                except ServingError:
                    report.dead_slots += 1
                    report.respawn_failures += 1
                    if rec.enabled:
                        rec.counter(_METRIC + "respawn_failures")
                    continue
                if respawned:
                    report.respawned += 1
                    if rec.enabled:
                        rec.counter(_METRIC + "respawns")
                        rec.observe(_METRIC + "recovery_seconds",
                                    max(0.0, now - state.first_dead_at))
                    state.alive_since = now
                    state.first_dead_at = None
                else:
                    # The slot came back by itself (rebalance race);
                    # give the attempt back.
                    state.attempts = attempt

    # ------------------------------------------------------------------
    def _sweep_skew(self, now: float, report: SweepReport) -> None:
        cfg = self.config
        frontend = self.frontend
        rec = get_recorder()
        plan = frontend.plan
        current = {
            shard: float(rec.counters.get(
                f"serving.shard.{shard}.requests", 0.0))
            for shard in range(plan.num_shards)
        }
        deltas = [current[s] - self._last_requests.get(s, 0.0)
                  for s in range(plan.num_shards)]
        self._last_requests = current
        total = sum(deltas)
        report.requests_delta = total
        num_nodes = (frontend._current.num_nodes
                     if frontend._current is not None else 0)
        target: ShardPlan | None = None
        if total >= cfg.min_requests and plan.num_shards > 1:
            mean = total / plan.num_shards
            report.skew_ratio = max(deltas) / mean if mean > 0 else 0.0
            if report.skew_ratio >= cfg.skew_threshold:
                report.skewed = True
                self._skew_streak += 1
                if rec.enabled:
                    rec.counter(_METRIC + "skew_observations")
            else:
                self._skew_streak = 0
            if self._skew_streak >= cfg.skew_observations:
                target = self.choose_plan(plan, num_nodes, deltas)
        if (target is None and cfg.nodes_per_shard is not None
                and num_nodes > 0):
            wanted = min(cfg.max_shards,
                         math.ceil(num_nodes / cfg.nodes_per_shard))
            if wanted > plan.num_shards:
                target = ShardPlan(wanted, plan.strategy)
        if target is None or target == plan:
            return
        if (self._last_rebalance_at is not None
                and now - self._last_rebalance_at
                < cfg.rebalance_cooldown):
            return
        self.frontend.rebalance(target)
        self._last_rebalance_at = now
        self._skew_streak = 0
        # The new table's counters start from the same ambient
        # recorder, but the *shard ids* change meaning under a new
        # plan; re-baseline so the first post-move sweep isn't judged
        # against pre-move traffic.
        self._last_requests = {}
        report.rebalanced_to = target
        if rec.enabled:
            rec.counter(_METRIC + "rebalance_decisions")

    # ------------------------------------------------------------------
    def choose_plan(self, plan: ShardPlan, num_nodes: int,
                    rates: list[float]) -> ShardPlan | None:
        """Pick the next plan for a sustained-skew tier, or None.

        A skewed ``range`` plan means a hot contiguous id range —
        switching to ``hash`` at the same width scatters those ids
        across every shard.  A skewed ``hash`` plan means individually
        hot ids; the only dilution left is widening the tier (capped by
        ``max_shards``; at the cap the skew is accepted and no move is
        proposed).
        """
        if plan.strategy not in PLAN_CHOICES:  # pragma: no cover
            raise ServingError(f"unknown strategy {plan.strategy!r}")
        if plan.strategy == "range":
            return ShardPlan(plan.num_shards, "hash")
        wanted = min(self.config.max_shards, plan.num_shards * 2)
        if wanted <= plan.num_shards:
            return None
        return ShardPlan(wanted, "hash")
