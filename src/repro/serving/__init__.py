"""Online serving layer: versioned embeddings, micro-batching, top-k.

This package is the query half of the §VII-B deployment loop.  The
ingest half already exists (:class:`~repro.graph.dynamic
.DynamicTemporalGraph` plus :class:`~repro.tasks.incremental
.IncrementalEmbedder`); serving adds:

- :class:`EmbeddingStore` — versioned, atomically-swapped embedding
  snapshots keyed by graph generation (readers never block a swap and
  read consistent-but-stale data until they re-fetch);
- :class:`BatchScheduler` — micro-batching of requests under
  ``max_batch_size`` / ``max_delay`` knobs, amortizing per-request
  overhead the way Fig. 5's sentence batching amortizes kernel
  launches;
- :class:`RecommendationIndex` — blocked top-k over the embedding
  matrix with a per-``(node, k)`` LRU cache invalidated by snapshot
  version bump;
- :class:`IvfIndex` / :class:`IvfIndexManager` — the sub-linear IVF
  approximate top-k index (k-means cells, ``nprobe`` probing), rebuilt
  asynchronously per published snapshot with version pinning; the
  brute-force path stays the oracle and the automatic fallback;
- :class:`ServingFrontend` — the thread-safe query surface (link
  scores + top-k) client threads call;
- :class:`ShardPlan` / :class:`ShardedFrontend` /
  :class:`ShardedPublisher` — the scatter/gather sharded tier: the
  embedding space partitioned across worker processes (R replicas per
  shard with transparent read failover), per-shard local top-k merged
  bit-identically to the single-process oracle, snapshots sliced and
  installed version-atomically across every shard, and live plan
  migration via :meth:`ShardedFrontend.rebalance` (returns a
  :class:`RebalanceReport`) without stopping reads;
- :class:`ControlPlane` / :class:`ControlPlaneConfig` — the
  self-healing policy layer over the sharded tier: periodic health
  sweeps that auto-respawn dead replicas under the served version
  (crash-loop backoff + ``max_respawns`` circuit breaker) and trigger
  :meth:`ShardedFrontend.rebalance` on sustained per-shard load skew
  or catalog growth (hysteresis + cooldown);
- :func:`run_load` — a closed-loop load generator for the ``serve-sim``
  CLI subcommand and ``bench_serving_throughput``.

See ``docs/serving.md`` for architecture, staleness semantics, and the
metric catalog, and ``docs/ann_index.md`` for the IVF design and its
recall/latency trade-offs.
"""

from repro.serving.ann import IvfConfig, IvfIndex, IvfIndexManager
from repro.serving.batching import BatchFuture, BatchScheduler
from repro.serving.controlplane import (
    ControlPlane,
    ControlPlaneConfig,
    SweepReport,
)
from repro.serving.frontend import ServingConfig, ServingFrontend
from repro.serving.index import RecommendationIndex
from repro.serving.loadgen import LoadReport, run_load
from repro.serving.sharding import (
    EmbeddingShard,
    RebalanceReport,
    ShardPlan,
    ShardedFrontend,
    ShardedPublisher,
    ShardedServingConfig,
)
from repro.serving.store import EmbeddingSnapshot, EmbeddingStore

__all__ = [
    "BatchFuture",
    "BatchScheduler",
    "ControlPlane",
    "ControlPlaneConfig",
    "EmbeddingShard",
    "EmbeddingSnapshot",
    "EmbeddingStore",
    "IvfConfig",
    "IvfIndex",
    "IvfIndexManager",
    "LoadReport",
    "RebalanceReport",
    "RecommendationIndex",
    "ServingConfig",
    "ServingFrontend",
    "ShardPlan",
    "ShardedFrontend",
    "ShardedPublisher",
    "ShardedServingConfig",
    "SweepReport",
    "run_load",
]
