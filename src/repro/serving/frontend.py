"""Thread-based serving frontend: link scores and top-k recommendations.

:class:`ServingFrontend` is the in-process query surface of the online
loop.  Client threads call :meth:`score_link` / :meth:`top_k`; requests
flow through one :class:`~repro.serving.batching.BatchScheduler` per
request type, so concurrent callers share vectorized evaluations, and
top-k answers come from the :class:`~repro.serving.index
.RecommendationIndex` (blocked scan + generation-keyed LRU cache).

Fast path: a warm cached top-k bypasses the scheduler entirely — no
batching delay, zero GEMM work.  With ``index="ivf"`` an
:class:`~repro.serving.ann.IvfIndexManager` rebuilds a sub-linear IVF
index after every publish and top-k requests route through it (with
automatic exact fallback; a per-query ``mode=`` overrides the default
in either direction).  Everything is instrumented through the ambient
recorder: request counters per type, end-to-end latency histograms
(``serving.latency.*``), cache hit/miss, batch-size distribution,
snapshot-swap and ``serving.ann.*`` counters (see docs/serving.md for
the catalog).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.errors import ServingError
from repro.observability import get_recorder
from repro.serving.ann import INDEX_CHOICES, IvfConfig, IvfIndexManager
from repro.serving.batching import BatchFuture, BatchScheduler
from repro.serving.index import METRIC_CHOICES, RecommendationIndex, TopK
from repro.serving.store import EmbeddingStore


@dataclass(frozen=True)
class ServingConfig:
    """Knobs of the serving frontend.

    ``max_batch_size`` / ``max_delay`` bound each micro-batch (see
    :class:`BatchScheduler`); ``default_k``, ``cache_size``,
    ``block_size`` and ``metric`` configure the recommendation index.
    ``max_batch_size=1`` degenerates to the single-request path (every
    request is its own batch), which is the baseline the serving bench
    measures against.  ``index="ivf"`` routes top-k through the
    approximate IVF index (built per published snapshot; ``ann`` holds
    its :class:`~repro.serving.ann.IvfConfig`, defaulted when omitted);
    ``index="exact"`` keeps the brute-force oracle as the default while
    still honoring per-query ``mode="ivf"`` overrides when ``ann`` is
    configured.
    """

    max_batch_size: int = 64
    max_delay: float = 0.002
    default_k: int = 10
    cache_size: int = 4096
    block_size: int = 8192
    metric: str = "dot"
    index: str = "exact"
    ann: IvfConfig | None = None

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ServingError(
                f"max_batch_size must be >= 1, got {self.max_batch_size}"
            )
        if self.max_delay < 0:
            raise ServingError(
                f"max_delay must be >= 0, got {self.max_delay}"
            )
        if self.default_k < 1:
            raise ServingError(f"default_k must be >= 1, got {self.default_k}")
        if self.metric not in METRIC_CHOICES:
            raise ServingError(
                f"unknown metric {self.metric!r}; options: "
                f"{list(METRIC_CHOICES)}"
            )
        if self.index not in INDEX_CHOICES:
            raise ServingError(
                f"unknown index {self.index!r}; options: "
                f"{list(INDEX_CHOICES)}"
            )


class ServingFrontend:
    """Concurrent query frontend over an :class:`EmbeddingStore`."""

    def __init__(self, store: EmbeddingStore,
                 config: ServingConfig | None = None) -> None:
        self.store = store
        self.config = config or ServingConfig()
        self.ann: IvfIndexManager | None = None
        if self.config.index == "ivf" or self.config.ann is not None:
            self.ann = IvfIndexManager(
                store,
                config=self.config.ann or IvfConfig(),
                metric=self.config.metric,
            )
        self.index = RecommendationIndex(
            store,
            cache_size=self.config.cache_size,
            block_size=self.config.block_size,
            metric=self.config.metric,
            ann=self.ann,
            default_mode=self.config.index,
        )
        self._score_batcher = BatchScheduler(
            self._process_scores,
            max_batch_size=self.config.max_batch_size,
            max_delay=self.config.max_delay,
            name="link-score",
        )
        self._topk_batcher = BatchScheduler(
            self._process_topk,
            max_batch_size=self.config.max_batch_size,
            max_delay=self.config.max_delay,
            name="top-k",
        )

    @property
    def num_nodes(self) -> int:
        """Nodes in the served snapshot (the load generator's id space)."""
        return self.store.snapshot().num_nodes

    # ------------------------------------------------------------------
    def start(self) -> "ServingFrontend":
        """Start both schedulers (idempotent); returns self."""
        self._score_batcher.start()
        self._topk_batcher.start()
        return self

    def close(self) -> None:
        """Drain in-flight requests and stop the schedulers."""
        self._score_batcher.close()
        self._topk_batcher.close()
        if self.ann is not None:
            self.ann.close()

    def __enter__(self) -> "ServingFrontend":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Link scoring
    # ------------------------------------------------------------------
    def score_link_async(self, src: int, dst: int) -> BatchFuture:
        """Enqueue one link-score request; resolves to a float."""
        return self._score_batcher.submit((int(src), int(dst)))

    def score_link(self, src: int, dst: int,
                   timeout: float | None = None) -> float:
        """Similarity score of the candidate edge ``(src, dst)``.

        The score is the embedding inner product — the §IV-B edge
        representation collapsed to a ranking scalar (no classifier
        head); higher means more likely.  Blocks until the micro-batch
        containing this request flushes.
        """
        rec = get_recorder()
        start = time.monotonic()
        result = float(self.score_link_async(src, dst).result(timeout))
        if rec.enabled:
            rec.counter("serving.requests.score")
            rec.observe("serving.latency.score_s", time.monotonic() - start)
        return result

    def _process_scores(self, payloads: list[tuple[int, int]]) -> np.ndarray:
        snapshot = self.store.snapshot()
        pairs = np.asarray(payloads, dtype=np.int64)
        if np.any(pairs < 0) or np.any(pairs >= snapshot.num_nodes):
            raise ServingError(
                f"link-score request out of range [0, {snapshot.num_nodes})"
            )
        return np.einsum(
            "bd,bd->b",
            snapshot.matrix[pairs[:, 0]],
            snapshot.matrix[pairs[:, 1]],
        )

    # ------------------------------------------------------------------
    # Top-k recommendation
    # ------------------------------------------------------------------
    def top_k_async(self, node: int, k: int | None = None,
                    mode: str | None = None) -> BatchFuture:
        """Enqueue a top-k request; resolves to ``(ids, scores)``.

        A warm cache hit resolves immediately without entering the
        scheduler (no batching delay, zero GEMM work).  ``mode``
        overrides the configured index for this one request:
        ``"exact"`` forces the brute-force oracle (full recall),
        ``"ivf"`` requests the approximate index (falls back to exact
        automatically when no index matches the served snapshot).
        """
        k = self.config.default_k if k is None else int(k)
        hit = self.index.cached(int(node), k, mode=mode)
        if hit is not None:
            return BatchFuture.resolved(hit)
        return self._topk_batcher.submit((int(node), k, mode))

    def top_k(self, node: int, k: int | None = None,
              timeout: float | None = None,
              mode: str | None = None) -> TopK:
        """Top-``k`` recommended nodes for ``node``, best first."""
        rec = get_recorder()
        start = time.monotonic()
        result = self.top_k_async(node, k, mode=mode).result(timeout)
        if rec.enabled:
            rec.counter("serving.requests.topk")
            rec.observe("serving.latency.topk_s", time.monotonic() - start)
        return result

    def _process_topk(self, payloads: list[tuple[int, int, str | None]]
                      ) -> list[TopK]:
        return self.index.top_k_batch(payloads)
