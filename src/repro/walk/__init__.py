"""Temporal random walk (Algorithm 1 of the paper).

- :class:`WalkConfig` — the hyperparameters swept in Fig. 8: walks per
  node ``K``, walk length ``L``, and the transition bias (Eq. 1).
- :class:`TemporalWalkEngine` — the vectorized walk kernel; one call
  produces the full ``|V| x K`` walk matrix plus work statistics that feed
  the hardware models.
- :class:`BatchedWalkEngine` — the frontier-batched window-table kernel
  (same contract and distribution, O(1) table lookups per step); pick an
  engine by name with :func:`make_walk_engine`.
- :func:`run_walks_reference` — a straightforward scalar implementation
  used as a correctness oracle in tests.
- :class:`WalkCorpus` — the walk matrix with the length histogram of
  Fig. 4 and the sentence iterator word2vec consumes.
"""

from repro.walk.analysis import CorpusCoverage, corpus_coverage
from repro.walk.batched import (
    KERNEL_CHOICES,
    BatchedWalkEngine,
    make_walk_engine,
)
from repro.walk.config import WalkConfig
from repro.walk.corpus import WalkCorpus
from repro.walk.engine import TemporalWalkEngine, WalkStats
from repro.walk.reference import run_walks_reference
from repro.walk.sampling import (
    BIAS_CHOICES,
    transition_logits,
    transition_probabilities,
)

__all__ = [
    "CorpusCoverage",
    "corpus_coverage",
    "WalkConfig",
    "WalkCorpus",
    "TemporalWalkEngine",
    "BatchedWalkEngine",
    "make_walk_engine",
    "KERNEL_CHOICES",
    "WalkStats",
    "run_walks_reference",
    "BIAS_CHOICES",
    "transition_logits",
    "transition_probabilities",
]
