"""Vectorized temporal random walk engine (Algorithm 1).

The paper's kernel runs three nested loops — walks-per-node ``K``, all
vertices ``|V|``, and steps within a walk — parallelizing the vertex loop
with work-stealing OpenMP threads.  The numpy analogue advances *all
active walks one step per iteration*:

1. a **vectorized binary search** over each walk's time-sorted adjacency
   slice finds the temporally valid edge range (the ``G.sampleLatent``
   neighbor scan that contributes the ``M`` factor to the
   O(K·N·|V|·M) complexity);
2. one next edge per walk is drawn from the Eq. 1 softmax, by either of
   two exact samplers:

   - ``cdf`` (default): per-edge softmax weights are precomputed once as
     per-source-slice cumulative arrays (max-shifted within each slice,
     so no timestamp span can overflow ``exp`` and no cross-slice mass
     can swamp a small slice's prefix sums), so each step is an
     inverse-CDF binary search — O(log M) per walk instead of the
     paper's O(M) scan;
   - ``gumbel``: materializes every valid candidate and takes a segmented
     Gumbel-argmax — the paper-faithful O(M) work shape, useful for
     validation and for measuring what the scan costs;

3. walks whose valid range is empty terminate (this produces the Fig. 4
   power-law length distribution).

Either way the engine records the *scan-model* work counters
(``candidates_scanned`` is the number of edges the paper's kernel would
have touched) that the hardware models in :mod:`repro.hwmodel` consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import NamedTuple

import numpy as np

from repro.errors import WalkError
from repro.graph.csr import TemporalGraph
from repro.observability import Recorder, get_recorder
from repro.rng import SeedLike, make_rng
from repro.walk.config import WalkConfig
from repro.walk.corpus import PAD, WalkCorpus
from repro.walk.sampling import (
    segmented_gumbel_argmax,
    segmented_transition_logits,
)

SAMPLER_CHOICES = frozenset({"cdf", "gumbel"})


def linear_rank_draw(counts: np.ndarray, u: np.ndarray) -> np.ndarray:
    """Closed-form rank draw for the ``linear`` bias.

    Rank weights are ``n, n-1, ..., 1`` (rank 0 = soonest valid edge).
    Cumulative mass through rank ``j-1`` is ``j*n - j(j-1)/2``; inverting
    that quadratic for a uniform target yields the sampled rank without
    materializing any candidate.  ``u`` is one uniform draw per walk.
    """
    n = counts.astype(np.float64)
    total = n * (n + 1.0) / 2.0
    target = u * total
    disc = (2.0 * n + 1.0) ** 2 - 8.0 * target
    j = np.floor((2.0 * n + 1.0 - np.sqrt(disc)) / 2.0).astype(np.int64)
    return np.clip(j, 0, counts - 1)


@dataclass
class WalkStats:
    """Work counters of one engine run.

    These are the raw quantities behind the paper's hardware analysis:
    ``candidates_scanned`` counts the temporal-neighbor edges the paper's
    scan-based kernel touches per step (it drives the memory-instruction
    and softmax fp-op counts of Fig. 9 regardless of which sampler
    executed), ``search_iterations`` the binary-search branch work of the
    valid-range search, ``exp_evaluations`` the transcendental weight
    evaluations actually executed (``exp`` per edge at CDF-table build,
    per candidate under the gumbel sampler — the Fig. 9 fp-instruction
    analog), ``cdf_search_iterations`` the inverse-CDF binary-search
    work of the ``cdf`` sampler, and ``work_per_start_node`` the
    load-imbalance input of the thread-scaling study (Fig. 10).
    """

    num_walks: int = 0
    total_steps: int = 0
    candidates_scanned: int = 0
    search_iterations: int = 0
    terminated_early: int = 0
    exp_evaluations: int = 0
    cdf_search_iterations: int = 0
    work_per_start_node: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=np.int64)
    )

    @property
    def mean_candidates_per_step(self) -> float:
        """Average temporal neighbors scanned per step."""
        if self.total_steps == 0:
            return 0.0
        return self.candidates_scanned / self.total_steps


def publish_walk_stats(stats: WalkStats,
                       recorder: Recorder | None = None) -> None:
    """Flush one run's work counters into the (ambient) recorder.

    Called once per engine run (and once per merged parallel run), so
    the recorder cost is independent of walk count; a
    :class:`~repro.observability.NullRecorder` makes this free.
    """
    rec = recorder if recorder is not None else get_recorder()
    if not rec.enabled:
        return
    rec.counter("walk.runs")
    rec.counter("walk.num_walks", stats.num_walks)
    rec.counter("walk.steps", stats.total_steps)
    rec.counter("walk.edges_scanned", stats.candidates_scanned)
    rec.counter("walk.search_iterations", stats.search_iterations)
    rec.counter("walk.cdf_search_iterations", stats.cdf_search_iterations)
    rec.counter("walk.exp_evaluations", stats.exp_evaluations)
    rec.counter("walk.terminated_early", stats.terminated_early)
    if stats.total_steps:
        rec.observe("walk.candidates_per_step",
                    stats.candidates_scanned / stats.total_steps)


class _StepTable(NamedTuple):
    """Cached per-source-slice cumulative weights for the ``cdf`` sampler.

    ``cum[e]`` is anchored inside edge ``e``'s source slice in the
    direction of increasing weight (see :meth:`_step_table`); ``end``
    holds the value of the cumulative at each slice's end; ``owner``
    maps an edge to its source node.
    """

    cum: np.ndarray
    end: np.ndarray
    owner: np.ndarray


class TemporalWalkEngine:
    """Runs Algorithm 1 over a :class:`TemporalGraph`.

    ``sampler`` selects the step sampler (see module docstring).  The
    engine caches one per-slice cumulative-weight table per
    (bias, temperature) pair, so repeated runs on the same graph reuse
    it.  ``last_stats`` holds the work counters of the most recent
    :meth:`run`.
    """

    def __init__(self, graph: TemporalGraph, sampler: str = "cdf") -> None:
        if sampler not in SAMPLER_CHOICES:
            raise WalkError(
                f"unknown sampler {sampler!r}; options: {sorted(SAMPLER_CHOICES)}"
            )
        self.graph = graph
        self.sampler = sampler
        self.last_stats: WalkStats | None = None
        self._step_tables: dict[tuple[str, float], _StepTable] = {}
        self._edge_cdf_cache: dict[
            tuple[str, float], tuple[np.ndarray, np.ndarray]
        ] = {}
        self._owner: np.ndarray | None = None
        self._linear_order: np.ndarray | None = None

    def _edge_owner(self) -> np.ndarray:
        """Edge -> source-node map, computed once per engine.

        Shared by the step tables and the edge-start path; the graph is
        immutable for the engine's lifetime, so one O(E) ``np.repeat``
        serves every run.
        """
        if self._owner is None:
            self._owner = np.repeat(
                np.arange(self.graph.num_nodes, dtype=np.int64),
                np.diff(self.graph.indptr),
            )
        return self._owner

    def _linear_edge_order(self) -> np.ndarray:
        """Edge ids sorted by timestamp ascending (global linear ranking).

        Rank 0 is the globally earliest edge — the "soonest" edge from
        the edge-start clock of ``-inf`` — matching the within-slice rank
        ordering of :meth:`_sample_step_cdf`'s linear branch.  Stable so
        ties keep CSR order.
        """
        if self._linear_order is None:
            self._linear_order = np.argsort(
                self.graph.ts, kind="stable"
            ).astype(np.int64)
        return self._linear_order

    # ------------------------------------------------------------------
    def run(
        self,
        config: WalkConfig,
        seed: SeedLike = None,
        start_nodes: np.ndarray | None = None,
        start_time: float | None = None,
    ) -> WalkCorpus:
        """Generate ``K`` walks from every start node.

        ``start_nodes`` defaults to all graph nodes (Algorithm 1's middle
        loop).  ``start_time`` is the initial walk clock; the default
        (``-inf`` forward, ``+inf`` backward) makes every edge of the
        start node valid for the first hop (Algorithm 1 initializes
        ``currTime = 0`` on raw timestamps; with normalized timestamps
        ``-inf`` preserves that semantics for edges at t=0 under the
        strict ``>`` rule).

        Returns the padded walk matrix; work counters land in
        ``self.last_stats``.
        """
        graph = self.graph
        rng = make_rng(seed)
        if start_time is None:
            start_time = -np.inf if config.direction == "forward" else np.inf
        if start_nodes is None:
            start_nodes = np.arange(graph.num_nodes, dtype=np.int64)
        else:
            start_nodes = np.ascontiguousarray(start_nodes, dtype=np.int64)
            if len(start_nodes) and (
                start_nodes.min() < 0 or start_nodes.max() >= graph.num_nodes
            ):
                raise WalkError("start_nodes contains out-of-range node ids")

        temperature = config.temperature
        if temperature is None:
            temperature = graph.time_span() or 1.0

        k = config.num_walks_per_node
        starts = np.tile(start_nodes, k)  # row w*|starts| + v, as in Alg. 1
        num_walks = len(starts)
        matrix = np.full((num_walks, config.max_walk_length), PAD, dtype=np.int64)
        matrix[:, 0] = starts
        lengths = np.ones(num_walks, dtype=np.int64)

        stats = WalkStats(
            num_walks=num_walks,
            work_per_start_node=np.zeros(graph.num_nodes, dtype=np.int64),
        )
        cur = starts.copy()
        cur_time = np.full(num_walks, start_time, dtype=np.float64)
        self._advance(
            matrix, lengths, starts, cur, cur_time, config, temperature,
            rng, stats, first_step=1,
        )
        self.last_stats = stats
        publish_walk_stats(stats)
        return WalkCorpus(matrix, lengths, start_nodes=starts)

    # ------------------------------------------------------------------
    def run_from_edges(
        self,
        config: WalkConfig,
        num_walks: int,
        seed: SeedLike = None,
    ) -> WalkCorpus:
        """CTDNE-style walks: sample initial temporal *edges*, then walk.

        The original CTDNE formulation draws each walk's first edge from
        a distribution over all temporal edges (here: the same bias as
        the step distribution, applied to edge timestamps), then
        continues temporally from its destination.  The paper's
        Algorithm 1 starts from every node instead; this method provides
        the edge-start variant for comparison.  ``num_walks`` initial
        edges are drawn with replacement.
        """
        graph = self.graph
        if graph.num_edges == 0:
            raise WalkError("cannot sample initial edges from an empty graph")
        if num_walks < 1:
            raise WalkError(f"num_walks must be >= 1, got {num_walks}")
        if config.direction != "forward":
            raise WalkError("edge-sampled starts support forward walks only")
        rng = make_rng(seed)
        temperature = config.temperature
        if temperature is None:
            temperature = graph.time_span() or 1.0

        stats = WalkStats(
            num_walks=num_walks,
            work_per_start_node=np.zeros(graph.num_nodes, dtype=np.int64),
        )

        # Sample initial edges from the bias distribution over all edges.
        if config.bias == "uniform":
            edge_ids = rng.integers(0, graph.num_edges, size=num_walks)
        elif config.bias in ("softmax-late", "softmax-recency"):
            edge_ids = self._draw_initial_edges(
                config.bias, temperature, rng.random(num_walks), stats
            )
        else:  # linear: closed-form rank draw over the global time order
            # Rank j (0 = earliest timestamp, the soonest edge from the
            # -inf start clock) has weight |E| - j.
            order = self._linear_edge_order()
            counts = np.full(num_walks, graph.num_edges, dtype=np.int64)
            j = linear_rank_draw(counts, rng.random(num_walks))
            edge_ids = order[j]

        starts = self._edge_owner()[edge_ids]
        matrix = np.full((num_walks, config.max_walk_length), PAD,
                         dtype=np.int64)
        matrix[:, 0] = starts
        lengths = np.ones(num_walks, dtype=np.int64)
        cur = starts.copy()
        cur_time = np.full(num_walks, -np.inf)
        if config.max_walk_length >= 2:
            # Book the initial hop's scan-model work exactly as run()
            # books its first hop: the kernel positions at the start
            # node with clock -inf and scans its whole temporally valid
            # slice.  Without this the hop lands in total_steps only,
            # skewing mean_candidates_per_step and the hwmodel inputs
            # for edge-start corpora.
            lo0, hi0, iters0 = self._valid_range(
                starts, cur_time, config.allow_equal,
                config.time_window, config.direction,
            )
            counts0 = hi0 - lo0
            stats.search_iterations += iters0
            stats.candidates_scanned += int(counts0.sum())
            np.add.at(stats.work_per_start_node, starts, counts0)
            stats.total_steps += num_walks

            matrix[:, 1] = graph.dst[edge_ids]
            lengths[:] = 2
            cur = graph.dst[edge_ids].copy()
            cur_time = graph.ts[edge_ids].copy()
        self._advance(
            matrix, lengths, starts, cur, cur_time, config, temperature,
            rng, stats, first_step=2, prev_edges=edge_ids,
        )
        self.last_stats = stats
        publish_walk_stats(stats)
        return WalkCorpus(matrix, lengths, start_nodes=starts)

    # ------------------------------------------------------------------
    def _advance(
        self,
        matrix: np.ndarray,
        lengths: np.ndarray,
        starts: np.ndarray,
        cur: np.ndarray,
        cur_time: np.ndarray,
        config: WalkConfig,
        temperature: float,
        rng: np.random.Generator,
        stats: WalkStats,
        first_step: int,
        prev_edges: np.ndarray | None = None,
    ) -> None:
        """Advance all walks from ``first_step`` until termination.

        ``prev_edges`` optionally carries the edge each walk last
        traversed (``-1`` for walks positioned by a bare clock).  The
        oracle engine's valid-range search only needs the clock, so it
        ignores the hint; the batched kernel uses it to replace the
        search with an O(1) per-edge successor-table lookup.
        """
        graph = self.graph
        active = np.arange(len(cur), dtype=np.int64)
        for step in range(first_step, config.max_walk_length):
            if len(active) == 0:
                break
            lo, hi, iters = self._valid_range(
                cur[active], cur_time[active], config.allow_equal,
                config.time_window, config.direction,
            )
            stats.search_iterations += iters
            counts = hi - lo
            stats.candidates_scanned += int(counts.sum())
            np.add.at(stats.work_per_start_node, starts[active], counts)

            alive = counts > 0
            stats.terminated_early += int(np.sum(~alive))
            active = active[alive]
            if len(active) == 0:
                break
            lo = lo[alive]
            counts = counts[alive]

            if self.sampler == "cdf":
                chosen_edges = self._sample_step_cdf(
                    lo, counts, config.bias, temperature, rng, stats
                )
            else:
                chosen_edges = self._sample_step_gumbel(
                    lo, counts, config.bias, temperature, rng, stats
                )
            next_nodes = graph.dst[chosen_edges]
            next_times = graph.ts[chosen_edges]

            matrix[active, step] = next_nodes
            lengths[active] = step + 1
            cur[active] = next_nodes
            cur_time[active] = next_times
            stats.total_steps += len(active)

    # ------------------------------------------------------------------
    def _lower_bound(
        self, lo: np.ndarray, hi: np.ndarray, thresholds: np.ndarray,
        strict: bool,
    ) -> tuple[np.ndarray, int]:
        """First index per slice whose timestamp exceeds its threshold.

        ``strict`` seeks ``ts > threshold``; otherwise ``ts >= threshold``.
        Vectorized binary search; returns the bound and iteration count.
        """
        ts = self.graph.ts
        lo = lo.copy()
        hi = hi.copy()
        iters = 0
        searching = lo < hi
        while searching.any():
            iters += 1
            mid = (lo + hi) >> 1
            go_right = np.zeros(len(lo), dtype=bool)
            if strict:
                go_right[searching] = ts[mid[searching]] <= thresholds[searching]
            else:
                go_right[searching] = ts[mid[searching]] < thresholds[searching]
            lo = np.where(searching & go_right, mid + 1, lo)
            hi = np.where(searching & ~go_right, mid, hi)
            searching = lo < hi
        return lo, iters

    def _valid_range(
        self,
        nodes: np.ndarray,
        times: np.ndarray,
        allow_equal: bool,
        time_window: float | None = None,
        direction: str = "forward",
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """Temporally valid edge range per walk.

        Returns ``(lo, hi, iterations)`` where ``[lo, hi)`` indexes the
        valid edges of each walk's current node.  Forward: timestamps
        after the walk clock (strict ``>`` by Definition III.2, or
        ``>=`` with ``allow_equal``).  Backward: timestamps before it.
        ``time_window`` additionally bounds the gap from the clock.
        """
        graph = self.graph
        slice_lo = graph.indptr[nodes]
        slice_hi = graph.indptr[nodes + 1]
        if direction == "forward":
            lo, iters = self._lower_bound(
                slice_lo, slice_hi, times, strict=not allow_equal
            )
            if time_window is None:
                return lo, slice_hi, iters
            # A walk that has not taken its first hop (clock = -inf) has
            # no window yet: the bound needs a real timestamp.
            upper = np.where(
                np.isfinite(times), times + time_window, np.inf
            )
            hi, more = self._lower_bound(slice_lo, slice_hi, upper,
                                         strict=True)
            return lo, np.maximum(lo, hi), iters + more
        # Backward: valid edges are [first ts >= t-window, first ts >= t)
        # (strict ts < t; allow_equal uses ts <= t, i.e. first ts > t).
        hi, iters = self._lower_bound(
            slice_lo, slice_hi, times, strict=allow_equal
        )
        if time_window is None:
            return slice_lo, hi, iters
        lower = np.where(
            np.isfinite(times), times - time_window, -np.inf
        )
        lo, more = self._lower_bound(slice_lo, slice_hi, lower, strict=False)
        return np.minimum(lo, hi), hi, iters + more

    # ------------------------------------------------------------------
    # Fast exact sampler: inverse CDF over per-slice cumulative weights
    # ------------------------------------------------------------------
    def _softmax_scores(self, bias: str, temperature: float) -> np.ndarray:
        """Per-edge log-weights ``±ts / temperature`` for a softmax bias."""
        ts = self.graph.ts
        if bias == "softmax-late":
            return ts / temperature
        if bias == "softmax-recency":
            return -ts / temperature
        raise WalkError(f"no CDF weights for bias {bias!r}")

    def _step_table(
        self, bias: str, temperature: float, stats: WalkStats
    ) -> _StepTable:
        """Per-source-slice anchored cumulative softmax weights.

        Each slice's weights are shifted by the slice maximum before
        ``exp`` — ``w = exp(score - max(score within slice))`` lies in
        ``(0, 1]`` for every edge, so no timestamp span can overflow,
        and every slice carries mass >= 1 so no slice is swamped by its
        neighbors' totals.  The cumulative array is anchored *per slice*
        in the direction of increasing weight:

        - ``softmax-late`` (weights grow along the time-sorted slice):
          ``cum[e]`` is the exclusive prefix sum from the slice start and
          ``end[v]`` is the slice total, so the mass of range
          ``[lo, hi)`` is ``cum_at(hi) - cum[lo]`` with large terms
          entering the subtraction only near the large-weight end;
        - ``softmax-recency`` (weights shrink along the slice):
          ``cum[e] = -(sum of w[e:slice_end])`` — a negative, increasing
          suffix anchor with ``end[v] = 0`` — so small deep-slice masses
          are differences of *small* numbers rather than of two huge
          prefix sums (the catastrophic cancellation in the old global
          CDF).

        The global accumulation runs in extended precision before the
        per-slice anchor is subtracted, keeping the float64 result's
        error at the slice scale instead of the graph scale.
        """
        key = (bias, float(temperature))
        cached = self._step_tables.get(key)
        if cached is not None:
            return cached
        graph = self.graph
        indptr = graph.indptr
        num_edges = graph.num_edges
        deg = np.diff(indptr)
        owner = self._edge_owner()
        score = self._softmax_scores(bias, temperature)
        slice_max = np.zeros(graph.num_nodes, dtype=np.float64)
        nonempty = deg > 0
        if num_edges:
            slice_max[nonempty] = np.maximum.reduceat(
                score, indptr[:-1][nonempty]
            )
        weights = np.exp(score - slice_max[owner])
        stats.exp_evaluations += num_edges
        end = np.zeros(graph.num_nodes, dtype=np.float64)
        if bias == "softmax-late":
            acc = np.zeros(num_edges + 1, dtype=np.longdouble)
            np.cumsum(weights, dtype=np.longdouble, out=acc[1:])
            cum = np.asarray(
                acc[:num_edges] - acc[indptr[owner]], dtype=np.float64
            )
            end[nonempty] = np.asarray(
                acc[indptr[1:][nonempty]] - acc[indptr[:-1][nonempty]],
                dtype=np.float64,
            )
        else:
            suffix = np.zeros(num_edges + 1, dtype=np.longdouble)
            np.cumsum(weights[::-1], dtype=np.longdouble, out=suffix[1:])
            suffix = suffix[::-1]  # suffix[e] = sum of weights[e:]
            cum = np.asarray(
                suffix[indptr[owner + 1]] - suffix[:num_edges],
                dtype=np.float64,
            )
        table = _StepTable(cum=cum, end=end, owner=owner)
        self._step_tables[key] = table
        return table

    def _edge_cdf(
        self, bias: str, temperature: float, stats: WalkStats
    ) -> tuple[np.ndarray, np.ndarray]:
        """Global CDF over *all* edges for initial-edge sampling.

        Unlike the per-slice step table this intentionally ranks edges
        across the whole graph (CTDNE draws a walk's first edge from a
        global distribution), so it shifts by the global score maximum:
        weights stay in ``(0, 1]`` and the prefix sum cannot overflow.
        Edges far below the maximum underflow to weight zero, which
        matches the true global softmax to float64 resolution.

        Returns ``(cdf, positive)``: the length ``E+1`` prefix-sum array
        and the ids of edges with strictly positive weight, so the draw
        can restrict itself to selectable edges (see
        :meth:`_draw_initial_edges`).
        """
        key = (bias, float(temperature))
        cached = self._edge_cdf_cache.get(key)
        if cached is not None:
            return cached
        score = self._softmax_scores(bias, temperature)
        shift = score.max() if len(score) else 0.0
        weights = np.exp(score - shift)
        stats.exp_evaluations += len(score)
        cdf = np.zeros(len(score) + 1, dtype=np.float64)
        np.cumsum(weights, out=cdf[1:])
        positive = np.flatnonzero(weights > 0.0)
        self._edge_cdf_cache[key] = (cdf, positive)
        return cdf, positive

    def _draw_initial_edges(
        self,
        bias: str,
        temperature: float,
        u: np.ndarray,
        stats: WalkStats,
    ) -> np.ndarray:
        """Inverse-CDF draw of initial edges with zero-weight-skip semantics.

        The step sampler's :meth:`_first_gt` strict-``>`` search never
        lands on a zero-weight (underflown) edge; the edge-start draw
        must match.  ``searchsorted(cdf, target, "right") - 1`` does not:
        a target sitting exactly on a flat stretch of the CDF — in
        particular the top plateau ``target == cdf[-1]`` left by trailing
        zero-weight edges — resolves to the *last* edge of the plateau,
        which has weight zero.  Restricting the search to the prefix sums
        *at the end of each positive-weight edge* gives first-greater-than
        semantics: every target in ``[0, cdf[-1]]`` maps to a positive-
        weight edge, with probability exactly proportional to its weight.
        """
        cdf, positive = self._edge_cdf(bias, temperature, stats)
        if len(positive) == 0:
            raise WalkError("no edge has positive sampling weight")
        target = u * cdf[-1]
        pcdf = cdf[positive + 1]  # strictly increasing cumulative mass
        j = np.searchsorted(pcdf, target, side="right")
        # target == cdf[-1] (reachable only from an injected u == 1.0)
        # falls past the last positive edge; clamp to it.
        j = np.minimum(j, len(positive) - 1)
        return positive[j]

    def _first_gt(
        self,
        values: np.ndarray,
        lo: np.ndarray,
        hi: np.ndarray,
        targets: np.ndarray,
    ) -> tuple[np.ndarray, int]:
        """First index per range whose value exceeds its target.

        Vectorized binary search over ``values`` restricted to
        ``[lo, hi)`` per walk; returns ``hi`` where no value qualifies,
        plus the iteration count (the ``cdf`` sampler's work counter).
        """
        lo = lo.copy()
        hi = hi.copy()
        iters = 0
        searching = lo < hi
        while searching.any():
            iters += 1
            mid = (lo + hi) >> 1
            go_right = np.zeros(len(lo), dtype=bool)
            go_right[searching] = values[mid[searching]] <= targets[searching]
            lo = np.where(searching & go_right, mid + 1, lo)
            hi = np.where(searching & ~go_right, mid, hi)
            searching = lo < hi
        return lo, iters

    def _sample_step_cdf(
        self,
        lo: np.ndarray,
        counts: np.ndarray,
        bias: str,
        temperature: float,
        rng: np.random.Generator,
        stats: WalkStats,
    ) -> np.ndarray:
        """Draw one edge per walk in O(log M) without touching candidates."""
        hi = lo + counts
        if bias == "uniform":
            return lo + rng.integers(0, counts)
        if bias == "linear":
            return lo + linear_rank_draw(counts, rng.random(len(counts)))
        table = self._step_table(bias, temperature, stats)
        owners = table.owner[lo]
        slice_end = self.graph.indptr[owners + 1]
        lo_val = table.cum[lo]
        # cum_at(hi): within the slice it is cum[hi]; at the slice end it
        # is the anchored end value (slice total for late, 0 for recency).
        hi_val = np.where(
            hi < slice_end,
            table.cum[np.minimum(hi, len(table.cum) - 1)],
            table.end[owners],
        )
        mass = hi_val - lo_val
        target = lo_val + rng.random(len(lo)) * mass
        # Strict > skips zero-weight (underflown) edges at the low end of
        # a range, so such edges are never selected.
        idx, iters = self._first_gt(table.cum, lo + 1, hi, target)
        stats.cdf_search_iterations += iters
        chosen = idx - 1
        if bias == "softmax-recency":
            # A fully-underflown sub-range (possible only when a time
            # window cuts off the slice maximum) concentrates its true
            # mass on the earliest edge for recency; the search's
            # no-value-qualifies fallback (latest) is correct for late.
            chosen = np.where(mass > 0, chosen, lo)
        return chosen

    # ------------------------------------------------------------------
    # Paper-faithful sampler: materialize candidates, segmented Gumbel-max
    # ------------------------------------------------------------------
    def _sample_step_gumbel(
        self,
        lo: np.ndarray,
        counts: np.ndarray,
        bias: str,
        temperature: float,
        rng: np.random.Generator,
        stats: WalkStats,
    ) -> np.ndarray:
        """Draw one edge per walk by scanning all valid candidates (O(M))."""
        total = int(counts.sum())
        # Gumbel noise costs transcendental evaluations per candidate —
        # the per-step weight-evaluation work of the paper's O(M) kernel.
        stats.exp_evaluations += total
        seg_starts = np.zeros(len(counts), dtype=np.int64)
        np.cumsum(counts[:-1], out=seg_starts[1:])
        within_rank = np.arange(total, dtype=np.int64) - np.repeat(seg_starts, counts)
        cand_edges = np.repeat(lo, counts) + within_rank
        seg_ids = np.repeat(np.arange(len(counts), dtype=np.int64), counts)

        logits = segmented_transition_logits(
            self.graph.ts[cand_edges],
            within_segment_rank=within_rank,
            segment_sizes_per_candidate=counts[seg_ids],
            bias=bias,
            temperature=temperature,
        )
        chosen_pos = segmented_gumbel_argmax(logits, seg_starts, seg_ids, rng)
        return cand_edges[chosen_pos]
