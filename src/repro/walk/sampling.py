"""Transition-probability models for temporal walks.

The paper's Eq. 1 models the probability of stepping along a temporally
valid edge with a softmax over edge timestamps,

    Pr[v | u] = exp(tau(u, v) / r) / sum_i exp(tau(u, i) / r),

where ``r`` is the total timestamp span.  As printed, this favors *later*
timestamps; the surrounding narrative (Fig. 2: the edge "immediately
after" the current one is the most correlated) describes a *recency* bias.
We implement both readings plus the uniform and rank-linear models from
the CTDNE line of work, selected by name:

- ``uniform``          — Pr = 1 / |N_u| (the "typical" model of §IV-A.1)
- ``softmax-late``     — Eq. 1 verbatim
- ``softmax-recency``  — softmax of ``-(tau - t_now) / r``
- ``linear``           — weight ``|N_u| - rank`` where rank 0 is the edge
                          soonest after ``t_now`` (linear decay)

All functions operate on the time-sorted candidate timestamp array of one
node's valid out-edges, so ``rank`` equals the array position.
"""

from __future__ import annotations

import numpy as np

from repro.errors import WalkError

BIAS_CHOICES = frozenset({"uniform", "softmax-late", "softmax-recency", "linear"})


def segmented_transition_logits(
    candidate_ts: np.ndarray,
    within_segment_rank: np.ndarray,
    segment_sizes_per_candidate: np.ndarray,
    bias: str,
    temperature: float,
) -> np.ndarray:
    """Vectorized logits for candidates drawn from many walks at once.

    Each candidate belongs to one walk's temporal neighborhood segment;
    its rank within the segment (rank 0 is the soonest valid edge because
    adjacency is time-sorted) and the segment's size are enough to
    evaluate every bias without a Python loop.

    Note the walk's current time does not appear: inside one segment it is
    a constant, and softmax is shift-invariant, so
    ``softmax(-(tau - t_now)/r) == softmax(-tau/r)`` — the recency bias
    reduces to an absolute-timestamp bias over the *valid* candidates.
    This is the single source of truth for logit semantics; the scalar
    :func:`transition_logits` wraps it.
    """
    ts = np.asarray(candidate_ts, dtype=np.float64)
    if bias == "uniform":
        return np.zeros_like(ts)
    if bias == "softmax-late":
        return ts / temperature
    if bias == "softmax-recency":
        return -ts / temperature
    if bias == "linear":
        # Weight decays linearly from |segment| (soonest) to 1 (latest).
        weights = (segment_sizes_per_candidate - within_segment_rank).astype(
            np.float64
        )
        return np.log(weights)
    raise WalkError(f"unknown bias {bias!r}; options: {sorted(BIAS_CHOICES)}")


def transition_logits(
    candidate_ts: np.ndarray,
    bias: str,
    temperature: float,
) -> np.ndarray:
    """Return unnormalized log-probabilities for each candidate edge.

    ``candidate_ts`` must be ascending (CSR adjacency order).  Single-node
    view of :func:`segmented_transition_logits`.
    """
    ts = np.asarray(candidate_ts, dtype=np.float64)
    n = len(ts)
    return segmented_transition_logits(
        ts,
        within_segment_rank=np.arange(n),
        segment_sizes_per_candidate=np.full(n, n),
        bias=bias,
        temperature=temperature,
    )


def transition_probabilities(
    candidate_ts: np.ndarray,
    bias: str,
    temperature: float,
) -> np.ndarray:
    """Return the normalized transition distribution over candidates.

    A numerically stable softmax of :func:`transition_logits`; empty
    candidate arrays return an empty distribution.
    """
    logits = transition_logits(candidate_ts, bias, temperature)
    if len(logits) == 0:
        return logits
    shifted = logits - logits.max()
    weights = np.exp(shifted)
    return weights / weights.sum()


def gumbel_argmax(
    logits: np.ndarray, rng: np.random.Generator
) -> int:
    """Sample an index from ``softmax(logits)`` via the Gumbel-max trick.

    Provided for single-node use and as the documented contract the
    vectorized engine's segmented version must match: adding independent
    Gumbel(0,1) noise to logits and taking the argmax samples exactly from
    the softmax distribution.
    """
    if len(logits) == 0:
        raise WalkError("cannot sample from an empty candidate set")
    noise = rng.gumbel(size=len(logits))
    return int(np.argmax(logits + noise))


def segmented_gumbel_argmax(
    logits: np.ndarray,
    segment_starts: np.ndarray,
    segment_ids: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """Sample one index per segment from per-segment softmax distributions.

    ``logits`` is the concatenation of every segment's logits,
    ``segment_starts`` the start offset of each segment (ascending), and
    ``segment_ids`` maps each logit position to its segment.  Returns the
    *global* chosen index for each segment.  This is the vectorized heart
    of the walk engine: one Gumbel draw per candidate, one segmented
    argmax, no Python loop over walks.
    """
    if len(logits) == 0:
        return np.empty(0, dtype=np.int64)
    keys = logits + rng.gumbel(size=len(logits))
    seg_max = np.maximum.reduceat(keys, segment_starts)
    # First position per segment achieving the max (float Gumbel noise
    # makes ties measure-zero, but min-reduce keeps it deterministic).
    positions = np.arange(len(keys), dtype=np.int64)
    hit_positions = np.where(keys == seg_max[segment_ids], positions, len(keys))
    return np.minimum.reduceat(hit_positions, segment_starts)
