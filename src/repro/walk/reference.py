"""Scalar reference implementation of Algorithm 1.

A line-by-line transcription of the paper's pseudocode: three nested
loops, explicit temporal-neighbor scan, explicit softmax sampling.  It is
orders of magnitude slower than :class:`repro.walk.TemporalWalkEngine`
but obviously correct, so tests use it as the oracle for the vectorized
engine (same invariants, statistically indistinguishable transition
distributions).
"""

from __future__ import annotations

import numpy as np

from repro.errors import WalkError
from repro.graph.csr import TemporalGraph
from repro.rng import SeedLike, make_rng
from repro.walk.config import WalkConfig
from repro.walk.corpus import PAD, WalkCorpus
from repro.walk.sampling import transition_probabilities


def run_walks_reference(
    graph: TemporalGraph,
    config: WalkConfig,
    seed: SeedLike = None,
    start_nodes: np.ndarray | None = None,
    start_time: float = -np.inf,
) -> WalkCorpus:
    """Generate walks with plain Python loops (test oracle).

    Matches the engine's contract: ``K`` walks per start node, walk rows
    ordered walk-major (``w * len(start_nodes) + v``), padded matrix.
    Only the paper's Algorithm 1 semantics are transcribed: forward
    direction, no time window — the extensions are engine-only and
    rejected here rather than silently ignored.
    """
    if config.direction != "forward":
        raise WalkError("the reference implements forward walks only")
    if config.time_window is not None:
        raise WalkError("the reference does not implement time windows")
    rng = make_rng(seed)
    if start_nodes is None:
        start_nodes = np.arange(graph.num_nodes, dtype=np.int64)
    temperature = config.temperature
    if temperature is None:
        temperature = graph.time_span() or 1.0

    k = config.num_walks_per_node
    num_walks = k * len(start_nodes)
    matrix = np.full((num_walks, config.max_walk_length), PAD, dtype=np.int64)
    lengths = np.ones(num_walks, dtype=np.int64)

    row = 0
    for _walk_round in range(k):  # outer loop of Algorithm 1
        for start in start_nodes:  # middle (parallel) loop
            current = int(start)
            current_time = start_time
            matrix[row, 0] = current
            for step in range(1, config.max_walk_length):  # inner loop
                dsts, times = graph.temporal_neighbors(
                    current, current_time, allow_equal=config.allow_equal
                )
                if len(dsts) == 0:
                    break  # Algorithm 1: no temporally valid neighbor
                probs = transition_probabilities(times, config.bias, temperature)
                choice = rng.choice(len(dsts), p=probs)
                current = int(dsts[choice])
                current_time = float(times[choice])
                matrix[row, step] = current
                lengths[row] = step + 1
            row += 1

    starts = np.tile(np.asarray(start_nodes, dtype=np.int64), k)
    return WalkCorpus(matrix, lengths, start_nodes=starts)
