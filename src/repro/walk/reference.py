"""Scalar reference implementation of Algorithm 1.

A line-by-line transcription of the paper's pseudocode: three nested
loops, explicit temporal-neighbor scan, explicit softmax sampling.  It is
orders of magnitude slower than :class:`repro.walk.TemporalWalkEngine`
but obviously correct, so tests use it as the oracle for the vectorized
engine (same invariants, statistically indistinguishable transition
distributions).  The engine-only extensions — ``time_window`` and
``direction="backward"`` — are implemented here too (scalar
``searchsorted`` over the time-sorted slice), so windowed and backward
kernels have the same oracle to validate against.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import TemporalGraph
from repro.rng import SeedLike, make_rng
from repro.walk.config import WalkConfig
from repro.walk.corpus import PAD, WalkCorpus
from repro.walk.sampling import transition_probabilities


def _valid_candidates(
    graph: TemporalGraph, node: int, t: float, config: WalkConfig
) -> tuple[np.ndarray, np.ndarray]:
    """Destinations/timestamps of the temporally valid edges of ``node``.

    Scalar mirror of the engine's ``_valid_range`` semantics: forward
    walks take timestamps after the clock (strict ``>`` by Definition
    III.2, ``>=`` with ``allow_equal``), backward walks timestamps before
    it, and a finite ``time_window`` additionally bounds the gap from the
    clock (an infinite clock has no window yet).
    """
    base, end = int(graph.indptr[node]), int(graph.indptr[node + 1])
    ts = graph.ts[base:end]
    if config.direction == "forward":
        lo = np.searchsorted(
            ts, t, side="left" if config.allow_equal else "right"
        )
        hi = len(ts)
        if config.time_window is not None and np.isfinite(t):
            hi = max(
                lo, np.searchsorted(ts, t + config.time_window, side="right")
            )
    else:
        hi = np.searchsorted(
            ts, t, side="right" if config.allow_equal else "left"
        )
        lo = 0
        if config.time_window is not None and np.isfinite(t):
            lo = min(
                hi, np.searchsorted(ts, t - config.time_window, side="left")
            )
    return graph.dst[base + lo:base + hi], ts[lo:hi]


def run_walks_reference(
    graph: TemporalGraph,
    config: WalkConfig,
    seed: SeedLike = None,
    start_nodes: np.ndarray | None = None,
    start_time: float | None = None,
) -> WalkCorpus:
    """Generate walks with plain Python loops (test oracle).

    Matches the engine's contract: ``K`` walks per start node, walk rows
    ordered walk-major (``w * len(start_nodes) + v``), padded matrix.
    ``start_time`` defaults like the engine's: ``-inf`` forward, ``+inf``
    backward, making every edge of the start node valid for the first
    hop.
    """
    rng = make_rng(seed)
    if start_time is None:
        start_time = -np.inf if config.direction == "forward" else np.inf
    if start_nodes is None:
        start_nodes = np.arange(graph.num_nodes, dtype=np.int64)
    temperature = config.temperature
    if temperature is None:
        temperature = graph.time_span() or 1.0

    k = config.num_walks_per_node
    num_walks = k * len(start_nodes)
    matrix = np.full((num_walks, config.max_walk_length), PAD, dtype=np.int64)
    lengths = np.ones(num_walks, dtype=np.int64)

    row = 0
    for _walk_round in range(k):  # outer loop of Algorithm 1
        for start in start_nodes:  # middle (parallel) loop
            current = int(start)
            current_time = float(start_time)
            matrix[row, 0] = current
            for step in range(1, config.max_walk_length):  # inner loop
                dsts, times = _valid_candidates(
                    graph, current, current_time, config
                )
                if len(dsts) == 0:
                    break  # Algorithm 1: no temporally valid neighbor
                probs = transition_probabilities(times, config.bias, temperature)
                choice = rng.choice(len(dsts), p=probs)
                current = int(dsts[choice])
                current_time = float(times[choice])
                matrix[row, step] = current
                lengths[row] = step + 1
            row += 1

    starts = np.tile(np.asarray(start_nodes, dtype=np.int64), k)
    return WalkCorpus(matrix, lengths, start_nodes=starts)
