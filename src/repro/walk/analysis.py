"""Walk-corpus diagnostics.

Quantifies how well a corpus samples the graph — the quantities behind
the paper's Fig. 8 explanations: more walks per node widen neighborhood
coverage until the (power-law) neighborhoods are exhausted; longer
walks deepen it until temporal termination caps the depth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import TemporalGraph
from repro.walk.corpus import WalkCorpus


@dataclass(frozen=True)
class CorpusCoverage:
    """Corpus sampling summary."""

    node_coverage: float
    trainable_node_coverage: float
    mean_distinct_neighbors: float
    neighbor_coverage: float
    context_entropy: float

    def as_row(self) -> dict[str, float]:
        """Dict form for table rendering."""
        return {
            "node_cov": round(self.node_coverage, 3),
            "trainable_cov": round(self.trainable_node_coverage, 3),
            "distinct_nbrs": round(self.mean_distinct_neighbors, 2),
            "nbr_cov": round(self.neighbor_coverage, 3),
            "ctx_entropy": round(self.context_entropy, 3),
        }


def corpus_coverage(corpus: WalkCorpus, graph: TemporalGraph
                    ) -> CorpusCoverage:
    """Compute coverage statistics of ``corpus`` over ``graph``.

    - ``node_coverage``: fraction of nodes appearing anywhere;
    - ``trainable_node_coverage``: fraction appearing in a sentence of
      length >= 2 (a node absent from all such sentences gets no
      skip-gram updates);
    - ``mean_distinct_neighbors``: distinct first-hop successors sampled
      per start node (what more walks per node buys — Fig. 8b);
    - ``neighbor_coverage``: that count relative to each node's temporal
      out-neighborhood size (saturation = the Fig. 8b plateau);
    - ``context_entropy``: Shannon entropy (bits) of the corpus's node
      occurrence distribution — low entropy means hub-dominated
      contexts.
    """
    n = graph.num_nodes
    frequencies = corpus.node_frequencies(n)
    node_coverage = float(np.mean(frequencies > 0)) if n else 0.0

    trainable = np.zeros(n, dtype=bool)
    first_hops: dict[int, set[int]] = {}
    for i in range(corpus.num_walks):
        walk = corpus.walk(i)
        if len(walk) >= 2:
            trainable[walk] = True
            first_hops.setdefault(int(walk[0]), set()).add(int(walk[1]))

    distinct = np.array([len(s) for s in first_hops.values()], dtype=float)
    mean_distinct = float(distinct.mean()) if len(distinct) else 0.0

    ratios = []
    for node, successors in first_hops.items():
        out_degree = len(np.unique(graph.neighbors(node)[0]))
        if out_degree:
            ratios.append(len(successors) / out_degree)
    neighbor_coverage = float(np.mean(ratios)) if ratios else 0.0

    total = frequencies.sum()
    if total > 0:
        probabilities = frequencies[frequencies > 0] / total
        entropy = float(-(probabilities * np.log2(probabilities)).sum())
    else:
        entropy = 0.0

    return CorpusCoverage(
        node_coverage=node_coverage,
        trainable_node_coverage=float(trainable.mean()) if n else 0.0,
        mean_distinct_neighbors=mean_distinct,
        neighbor_coverage=neighbor_coverage,
        context_entropy=entropy,
    )
