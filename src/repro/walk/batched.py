"""Frontier-batched window-table walk kernel.

The oracle engine pays two vectorized binary searches per walk step:
``_valid_range`` (find the temporally valid edge range) and, for the
softmax biases, ``_first_gt`` (inverse-CDF search within the range).
Profiling shows the two searches are ~85-90% of a ``cdf``-sampler run, so
a faster kernel must eliminate both — shortening them is not enough,
because splitting one binary search into two shallower ones leaves the
total comparison depth unchanged.  This module replaces each search with
a precomputed table lookup, in the spirit of the GPU temporal-window
sampler line of work (presample per-window transition structure once,
then advance a whole frontier of walkers with O(1) work per step):

**Per-edge successor tables** (``_SuccessorTable``): a walk's clock is
always the timestamp of the edge it last traversed, so the valid range
after traversing edge ``e`` — ``[first position in dst[e]'s slice with
ts > ts[e]``, ``slice end)`` (and the ``time_window`` variants) — is a
pure function of ``e``.  One O(E log M) vectorized build per
(direction, allow_equal, time_window) key turns every later validity
check into two O(1) gathers, *including the window bound*.  The bounds
are computed by the same ``_lower_bound`` the oracle uses, so they are
exact: termination behavior is bit-identical.

**Per-(node, window) CDF prefix blocks** (``_WindowTable``): the time
axis is partitioned into ``B`` equal-width windows
(``WalkConfig.num_windows``); each node's time-sorted slice is cut into
at most ``B`` contiguous blocks, and the oracle's per-slice cumulative
weight table (``_step_table`` — reused verbatim, so numerics agree to
the bit) is sampled at the block boundaries.  A step then draws the
target window with a fixed-depth O(log B) search over ``B+1`` boundary
values instead of an O(log M) search over the slice, and samples within
the window by uniform-proposal rejection: a window spans so little of
the time axis that softmax weights inside it are nearly flat, so the
acceptance rate is roughly ``exp(-span/(B·temperature)·span)`` — above
98% at the paper's temperature (the full span) with the default
``B = 64``.  Acceptance tests compare against the *exact* per-edge
weight (reconstructed as a difference of adjacent cumulative values),
so the sampled distribution is exactly the oracle's; walks that exhaust
the bounded rejection rounds fall back to the oracle's ``_first_gt``
on their (tiny) window range.  Zero-weight (underflown) edges fail the
strict acceptance test and are never selected, matching ``_first_gt``'s
strict-``>`` semantics.

``WalkStats`` counters keep the paper's scan model: ``candidates_scanned``
still counts the edges the paper's O(M) kernel would touch (the exact
valid-range sizes), ``search_iterations`` books the branch work of the
range search the oracle would have executed for each frontier, and
``exp_evaluations`` books the one-time table build — so fig09/fig10 and
:mod:`repro.hwmodel` inputs are unchanged in expectation.  The
*executed* search work of this kernel (block search + rejection rounds +
fallbacks) lands in ``cdf_search_iterations``.
"""

from __future__ import annotations

import time
from typing import NamedTuple

import numpy as np

from repro.errors import WalkError
from repro.graph.csr import TemporalGraph
from repro.walk.config import WalkConfig
from repro.walk.engine import (
    SAMPLER_CHOICES,
    TemporalWalkEngine,
    WalkStats,
    linear_rank_draw,
)

KERNEL_CHOICES = frozenset(SAMPLER_CHOICES | {"batched"})

# Uniform-proposal rejection rounds before falling back to the exact
# inverse-CDF search within the (single-window) range.  At >98% per-round
# acceptance the fallback is exercised ~1e-14 of the time; the bound only
# matters for adversarial weight profiles (huge temperature skew).
_REJECTION_ROUNDS = 8

# Whole-range envelope rejection rounds tried before the window search.
# Softmax weights are monotone along a time-sorted slice, so the range's
# largest weight sits at a known end — an O(1) envelope.  Acceptance is
# >= 1 - 1/e at the paper's default temperature (the full time span), so
# two rounds clear ~87% of the frontier without touching the block search.
_RANGE_ROUNDS = 2

# Envelope inflation absorbing the rounding jitter of cumulative-difference
# weights: |w_cum - w_true| <= ~deg * 2^-52 relative to the range's max
# weight, so a 1e-9 slack guarantees env >= every weight in the range and
# rejection stays exactly proportional to the table weights.
_ENVELOPE_SLACK = 1.0 + 1e-9


class _SuccessorTable(NamedTuple):
    """Valid-range bounds after traversing each edge (see module doc)."""

    lo: np.ndarray  # (E,) first valid position in dst[e]'s slice
    hi: np.ndarray  # (E,) one past the last valid position


class _WindowTable(NamedTuple):
    """Per-(node, window) block boundaries over the step table's CDF."""

    blk_start: np.ndarray  # (V, B+1) slice positions of window boundaries
    blk_cum: np.ndarray    # (V, B+1) cumulative weight at each boundary
    wmax: np.ndarray       # (V, B)   max edge weight within each block
    weights: np.ndarray    # (E,)     exact per-edge weights (cum diffs)
    num_windows: int


def make_walk_engine(
    graph: TemporalGraph, sampler: str = "cdf"
) -> TemporalWalkEngine:
    """Construct the walk engine for a sampler/kernel name.

    ``cdf`` and ``gumbel`` return the oracle :class:`TemporalWalkEngine`;
    ``batched`` returns the frontier-batched window-table kernel.  This is
    the single selection point the CLI, the parallel shard workers, the
    pipeline, and :class:`~repro.tasks.incremental.IncrementalEmbedder`
    all go through.
    """
    if sampler not in KERNEL_CHOICES:
        raise WalkError(
            f"unknown sampler {sampler!r}; options: {sorted(KERNEL_CHOICES)}"
        )
    if sampler == "batched":
        return BatchedWalkEngine(graph)
    return TemporalWalkEngine(graph, sampler=sampler)


class BatchedWalkEngine(TemporalWalkEngine):
    """Frontier-batched kernel: O(1) table lookups per walk step.

    Drop-in subclass of :class:`TemporalWalkEngine` — same ``run`` /
    ``run_from_edges`` contract, same exact sampling distribution, same
    scan-model ``WalkStats`` — with the per-step binary searches replaced
    by the precomputed tables described in the module docstring.  Tables
    are cached on the engine (keyed like ``_step_tables``), so repeated
    runs on the same graph — the incremental-embedding refresh pattern —
    pay the build once.
    """

    def __init__(self, graph: TemporalGraph) -> None:
        super().__init__(graph, sampler="cdf")
        self.sampler = "batched"
        self._succ_tables: dict[
            tuple[str, bool, float | None], _SuccessorTable
        ] = {}
        self._window_tables: dict[tuple[str, float, int], _WindowTable] = {}
        self.table_build_seconds = 0.0

    # ------------------------------------------------------------------
    # Table builds
    # ------------------------------------------------------------------
    def _successor_table(self, config: WalkConfig) -> _SuccessorTable:
        """Exact valid-range bounds after traversing each edge.

        Built with the oracle's own ``_lower_bound`` over every edge's
        destination slice, with the traversed edge's timestamp as the
        walk clock — the same computation ``_valid_range`` performs per
        step, hoisted out of the walk loop.
        """
        key = (config.direction, config.allow_equal, config.time_window)
        cached = self._succ_tables.get(key)
        if cached is not None:
            return cached
        t0 = time.perf_counter()
        graph = self.graph
        dst = graph.dst
        ts = graph.ts
        slice_lo = graph.indptr[dst]
        slice_hi = graph.indptr[dst + 1]
        if config.direction == "forward":
            lo, _ = self._lower_bound(
                slice_lo, slice_hi, ts, strict=not config.allow_equal
            )
            if config.time_window is None:
                hi = slice_hi
            else:
                hi, _ = self._lower_bound(
                    slice_lo, slice_hi, ts + config.time_window, strict=True
                )
                hi = np.maximum(lo, hi)
        else:
            hi, _ = self._lower_bound(
                slice_lo, slice_hi, ts, strict=config.allow_equal
            )
            if config.time_window is None:
                lo = slice_lo
            else:
                lo, _ = self._lower_bound(
                    slice_lo, slice_hi, ts - config.time_window, strict=False
                )
                lo = np.minimum(lo, hi)
        table = _SuccessorTable(lo=lo, hi=hi)
        self._succ_tables[key] = table
        self.table_build_seconds += time.perf_counter() - t0
        return table

    def _window_table(
        self, bias: str, temperature: float, num_windows: int,
        stats: WalkStats,
    ) -> _WindowTable:
        """Cut each node's slice into time windows over the step table.

        Window membership is by equal-width partition of the graph's
        timestamp range; within a slice the window index is nondecreasing
        (adjacency is time-sorted), so each window is one contiguous
        block whose boundary positions and boundary cumulative values are
        tabulated here.  ``weights`` reconstructs every edge's exact
        sampling weight as the difference of adjacent cumulative values —
        the same float64 numbers the oracle's inverse-CDF search
        compares, which is what makes the rejection sampler exact rather
        than approximately softmax.
        """
        key = (bias, float(temperature), int(num_windows))
        cached = self._window_tables.get(key)
        if cached is not None:
            return cached
        t0 = time.perf_counter()
        table = self._step_table(bias, temperature, stats)
        graph = self.graph
        indptr = graph.indptr
        num_nodes = graph.num_nodes
        num_edges = graph.num_edges
        b = int(num_windows)

        if num_edges:
            ts_min = float(graph.ts.min())
            width = (float(graph.ts.max()) - ts_min) / b
            if width > 0:
                widx = np.minimum(
                    ((graph.ts - ts_min) / width).astype(np.int64), b - 1
                )
            else:
                widx = np.zeros(num_edges, dtype=np.int64)
        else:
            widx = np.zeros(0, dtype=np.int64)

        counts = np.bincount(
            table.owner * b + widx, minlength=num_nodes * b
        ).reshape(num_nodes, b)
        blk_start = np.empty((num_nodes, b + 1), dtype=np.int64)
        blk_start[:, 0] = indptr[:-1]
        np.cumsum(counts, axis=1, out=blk_start[:, 1:])
        blk_start[:, 1:] += indptr[:-1, None]

        # Cumulative value at each boundary position: cum[p] inside the
        # slice, the anchored end value at the slice end (cum[p] there
        # would belong to the next node's slice).
        end_vals = table.end  # zeros for recency, slice totals for late
        if num_edges:
            inside = blk_start < indptr[1:, None]
            safe = np.minimum(blk_start, num_edges - 1)
            blk_cum = np.where(inside, table.cum[safe], end_vals[:, None])
        else:
            blk_cum = np.tile(end_vals[:, None], (1, b + 1))

        # Exact per-edge weights as differences of adjacent cumulative
        # values (NOT re-exponentiated scores: bit-consistent with the
        # values the oracle's _first_gt compares).
        if num_edges:
            idx = np.arange(num_edges, dtype=np.int64)
            slice_end = indptr[table.owner + 1]
            nxt = np.where(
                idx + 1 < slice_end,
                table.cum[np.minimum(idx + 1, num_edges - 1)],
                end_vals[table.owner],
            )
            weights = np.maximum(nxt - table.cum, 0.0)
        else:
            weights = np.zeros(0, dtype=np.float64)

        wmax = np.zeros(num_nodes * b, dtype=np.float64)
        sizes = counts.ravel()
        nonempty = sizes > 0
        if num_edges and nonempty.any():
            wmax[nonempty] = np.maximum.reduceat(
                weights, blk_start[:, :b].ravel()[nonempty]
            )
        wmax = wmax.reshape(num_nodes, b)

        wtable = _WindowTable(
            blk_start=blk_start, blk_cum=blk_cum, wmax=wmax,
            weights=weights, num_windows=b,
        )
        self._window_tables[key] = wtable
        self.table_build_seconds += time.perf_counter() - t0
        return wtable

    def table_bytes(self) -> int:
        """Total bytes held by the kernel's precomputed tables."""
        total = 0
        for st in self._succ_tables.values():
            total += st.lo.nbytes + st.hi.nbytes
        for wt in self._window_tables.values():
            total += (wt.blk_start.nbytes + wt.blk_cum.nbytes
                      + wt.wmax.nbytes + wt.weights.nbytes)
        for t in self._step_tables.values():
            total += t.cum.nbytes + t.end.nbytes
        return total

    # ------------------------------------------------------------------
    # Frontier advance
    # ------------------------------------------------------------------
    def _modeled_search_iters(
        self, nodes: np.ndarray, config: WalkConfig
    ) -> int:
        """Scan-model booking for a frontier's valid-range search.

        The oracle's vectorized ``_lower_bound`` runs until its deepest
        walk converges — ``bit_length(max slice degree)`` iterations
        (twice with a time window: two bound searches).  The batched
        kernel does not execute that search, but the hardware model's
        branch-work input must keep describing the paper's kernel, so
        the iterations it *would* have run are booked here.
        """
        indptr = self.graph.indptr
        deg = indptr[nodes + 1] - indptr[nodes]
        iters = int(deg.max()).bit_length() if len(deg) else 0
        if config.time_window is not None:
            iters *= 2
        return iters

    def _advance(
        self,
        matrix: np.ndarray,
        lengths: np.ndarray,
        starts: np.ndarray,
        cur: np.ndarray,
        cur_time: np.ndarray,
        config: WalkConfig,
        temperature: float,
        rng: np.random.Generator,
        stats: WalkStats,
        first_step: int,
        prev_edges: np.ndarray | None = None,
    ) -> None:
        """Advance the whole frontier one step per iteration, via tables."""
        graph = self.graph
        num_walks = len(cur)
        if num_walks == 0 or first_step >= config.max_walk_length:
            return
        succ = self._successor_table(config)
        softmax_bias = config.bias in ("softmax-late", "softmax-recency")
        if softmax_bias:
            # Build (or fetch) tables up front so exp work is booked once.
            self._window_table(
                config.bias, temperature, config.num_windows, stats
            )
        active = np.arange(num_walks, dtype=np.int64)
        prev = (
            np.ascontiguousarray(prev_edges, dtype=np.int64).copy()
            if prev_edges is not None
            else None
        )
        work = np.zeros(graph.num_nodes, dtype=np.float64)
        for step in range(first_step, config.max_walk_length):
            if len(active) == 0:
                break
            nodes = cur[active]
            if prev is None:
                # First hop: the clock is a bare start time, not an edge
                # timestamp — no successor-table entry applies.
                times = cur_time[active]
                bare = np.all(
                    times == (-np.inf if config.direction == "forward"
                              else np.inf)
                )
                if bare:
                    # The default run() start clock: every edge in the
                    # slice is valid and the window bound is vacuous
                    # (it needs a finite clock) — no search to execute.
                    lo = graph.indptr[nodes]
                    hi = graph.indptr[nodes + 1]
                    stats.search_iterations += self._modeled_search_iters(
                        nodes, config
                    )
                else:
                    lo, hi, iters = self._valid_range(
                        nodes, times, config.allow_equal,
                        config.time_window, config.direction,
                    )
                    stats.search_iterations += iters
                prev = np.full(num_walks, -1, dtype=np.int64)
            else:
                pe = prev[active]
                lo = succ.lo[pe]
                hi = succ.hi[pe]
                stats.search_iterations += self._modeled_search_iters(
                    nodes, config
                )
            counts = hi - lo
            stats.candidates_scanned += int(counts.sum())
            work += np.bincount(
                starts[active], weights=counts.astype(np.float64),
                minlength=graph.num_nodes,
            )

            alive = counts > 0
            stats.terminated_early += int(np.sum(~alive))
            active = active[alive]
            if len(active) == 0:
                break
            lo = lo[alive]
            hi = hi[alive]
            counts = counts[alive]
            nodes = nodes[alive]

            if config.bias == "uniform":
                chosen = lo + rng.integers(0, counts)
            elif config.bias == "linear":
                chosen = lo + linear_rank_draw(counts, rng.random(len(counts)))
            else:
                chosen = self._sample_step_windowed(
                    nodes, lo, hi, config.bias, temperature,
                    config.num_windows, rng, stats,
                )
            next_nodes = graph.dst[chosen]
            matrix[active, step] = next_nodes
            lengths[active] = step + 1
            cur[active] = next_nodes
            cur_time[active] = graph.ts[chosen]
            prev[active] = chosen
            stats.total_steps += len(active)
        # One exact accumulation instead of a scatter-add per step
        # (float sums of edge counts are exact far beyond any graph here).
        stats.work_per_start_node += work.astype(np.int64)

    # ------------------------------------------------------------------
    # Windowed softmax sampling
    # ------------------------------------------------------------------
    def _sample_step_windowed(
        self,
        nodes: np.ndarray,
        lo: np.ndarray,
        hi: np.ndarray,
        bias: str,
        temperature: float,
        num_windows: int,
        rng: np.random.Generator,
        stats: WalkStats,
    ) -> np.ndarray:
        """Draw one edge per walk from the exact softmax, in O(1) expected.

        Three layers, each exact, each handling the previous layer's
        rejections:

        1. *Whole-range envelope rejection* (``_RANGE_ROUNDS``): softmax
           weights are monotone along a time-sorted slice (decreasing for
           recency, increasing for late), so the range's maximum weight
           sits at a known end — an O(1) envelope.  Uniform proposals over
           ``[lo, hi)`` accepted against it are exactly softmax; at the
           default temperature acceptance is >= 1 - 1/e, so most of the
           frontier exits here without any search.
        2. *Window search*: an inverse-CDF search over the ``B+1`` block
           boundary cumulative values (fixed depth ``ceil(log2(B+1))``),
           then uniform-proposal rejection within the selected window with
           probability ``weight / window_max_weight`` — windows span so
           little of the time axis that acceptance is >98% regardless of
           temperature.
        3. The oracle's exact ``_first_gt`` on the (tiny) window range,
           after ``_REJECTION_ROUNDS`` misses.
        """
        graph = self.graph
        table = self._step_table(bias, temperature, stats)
        wt = self._window_table(bias, temperature, num_windows, stats)
        b = wt.num_windows
        num_edges = graph.num_edges
        m = len(nodes)
        cum = table.cum
        recency = bias == "softmax-recency"
        slice_end = graph.indptr[nodes + 1]

        lo_val = cum[lo]
        hi_val = np.where(
            hi < slice_end,
            cum[np.minimum(hi, max(num_edges - 1, 0))],
            table.end[nodes],
        )
        mass = hi_val - lo_val
        dead = ~(mass > 0)

        chosen = np.empty(m, dtype=np.int64)
        if dead.any():
            # Zero total mass (softmax fully underflown in the range,
            # possible only under a time window): same fallback rule as
            # the oracle — earliest edge for recency, latest for late.
            chosen[dead] = lo[dead] if recency else hi[dead] - 1
            pending = np.flatnonzero(~dead)
        else:
            pending = np.arange(m, dtype=np.int64)

        # --- layer 1: whole-range rejection with the monotone envelope.
        env = wt.weights[lo if recency else hi - 1] * _ENVELOPE_SLACK
        for _ in range(_RANGE_ROUNDS):
            if len(pending) == 0:
                break
            cnt = hi[pending] - lo[pending]
            pos = lo[pending] + np.minimum(
                (rng.random(len(pending)) * cnt).astype(np.int64), cnt - 1
            )
            # Strict <: a zero-weight (underflown) edge never accepts,
            # matching _first_gt's strict-> skip semantics.  env > 0
            # guards a fully-jittered envelope (acceptance against a zero
            # envelope would lose proportionality); such rows fall
            # through to the window search.
            accept = (
                rng.random(len(pending)) * env[pending] < wt.weights[pos]
            ) & (env[pending] > 0)
            chosen[pending[accept]] = pos[accept]
            pending = pending[~accept]
            stats.cdf_search_iterations += 1
        if len(pending) == 0:
            return chosen

        # --- layer 2, on the remainder only.  Window-level inverse CDF:
        # first j in [1, B] with blk_cum[node, j] > target (fixed-depth
        # vectorized search).
        sub = pending
        k = len(sub)
        ns = nodes[sub]
        target = lo_val[sub] + rng.random(k) * mass[sub]
        flat_cum = wt.blk_cum.ravel()
        base_idx = ns * (b + 1)
        lo_j = np.ones(k, dtype=np.int64)
        hi_j = np.full(k, b + 1, dtype=np.int64)
        depth = max(int(np.ceil(np.log2(b + 1))), 1)
        for _ in range(depth):
            mid = np.minimum((lo_j + hi_j) >> 1, b)
            go_right = flat_cum[base_idx + mid] <= target
            lo_j = np.where(go_right, mid + 1, lo_j)
            hi_j = np.where(go_right, hi_j, mid)
        stats.cdf_search_iterations += depth
        blk = np.minimum(lo_j, b) - 1  # window index in [0, B)

        flat_start = wt.blk_start.ravel()
        blo = flat_start[base_idx + blk]
        bhi = flat_start[base_idx + blk + 1]
        rlo = np.maximum(lo[sub], blo)
        rhi = np.minimum(hi[sub], bhi)
        wmax = wt.wmax.ravel()[ns * b + blk]

        # A rounding corner can push the target at (or past) the range's
        # top cumulative value, selecting a window beyond [lo, hi); such
        # rows bypass rejection (the block's wmax is not an envelope for
        # the full range) and take the exact fallback over [lo, hi).
        degen = rlo >= rhi
        if degen.any():
            rlo = np.where(degen, lo[sub], rlo)
            rhi = np.where(degen, hi[sub], rhi)
        rej = np.flatnonzero(~degen)  # indices into sub

        # --- uniform-proposal rejection within the selected window.
        for _ in range(_REJECTION_ROUNDS):
            if len(rej) == 0:
                break
            cnt = rhi[rej] - rlo[rej]
            pos = rlo[rej] + np.minimum(
                (rng.random(len(rej)) * cnt).astype(np.int64), cnt - 1
            )
            accept = rng.random(len(rej)) * wmax[rej] < wt.weights[pos]
            chosen[sub[rej[accept]]] = pos[accept]
            rej = rej[~accept]
            stats.cdf_search_iterations += 1

        left = np.concatenate([rej, np.flatnonzero(degen)])
        if len(left):
            # --- layer 3, exact fallback: fresh inverse-CDF draw
            # restricted to the (single-window) range — the conditional
            # distribution given the selected window.
            plo = rlo[left]
            phi = rhi[left]
            plo_val = cum[plo]
            phi_val = np.where(
                phi < slice_end[sub[left]],
                cum[np.minimum(phi, max(num_edges - 1, 0))],
                table.end[ns[left]],
            )
            sub_target = plo_val + rng.random(len(left)) * (
                phi_val - plo_val
            )
            idx, iters = self._first_gt(cum, plo + 1, phi, sub_target)
            stats.cdf_search_iterations += iters
            fallen = idx - 1
            if recency:
                fallen = np.where(phi_val - plo_val > 0, fallen, plo)
            chosen[sub[left]] = fallen
        return chosen
