"""Walk corpus: the output of Algorithm 1 and the input of word2vec.

Algorithm 1 materializes a ``|V| * K`` by ``L`` matrix of node ids (the
paper's output matrix ``W``).  We store exactly that, padded with ``-1``
past each walk's termination point, together with per-walk lengths.  The
length histogram is Fig. 4; the sentence view is what the skip-gram
trainer consumes.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import WalkError

PAD = -1


class WalkCorpus:
    """A fixed-shape matrix of temporal walks.

    Parameters
    ----------
    matrix:
        ``(num_walks, max_walk_length)`` int64 array; row ``i`` holds walk
        ``i``'s node ids, padded with :data:`PAD` after termination.
    lengths:
        Number of valid nodes per row (>= 1: every walk contains at least
        its start node).
    start_nodes:
        The start node of each walk (equals ``matrix[:, 0]``); kept
        explicitly for cheap per-node grouping.
    """

    def __init__(
        self,
        matrix: np.ndarray,
        lengths: np.ndarray,
        start_nodes: np.ndarray | None = None,
    ) -> None:
        self.matrix = np.ascontiguousarray(matrix, dtype=np.int64)
        self.lengths = np.ascontiguousarray(lengths, dtype=np.int64)
        if self.matrix.ndim != 2:
            raise WalkError("matrix must be 2-D (num_walks x max_walk_length)")
        if len(self.lengths) != len(self.matrix):
            raise WalkError("lengths must have one entry per walk")
        if len(self.lengths) and (
            self.lengths.min() < 1 or self.lengths.max() > self.matrix.shape[1]
        ):
            raise WalkError("walk lengths must be in [1, max_walk_length]")
        if start_nodes is None:
            start_nodes = self.matrix[:, 0].copy()
        self.start_nodes = np.ascontiguousarray(start_nodes, dtype=np.int64)

    # ------------------------------------------------------------------
    @property
    def num_walks(self) -> int:
        """Number of walks in the corpus."""
        return len(self.matrix)

    @property
    def max_walk_length(self) -> int:
        """Padded row width (maximum nodes per walk)."""
        return self.matrix.shape[1]

    def __len__(self) -> int:
        return self.num_walks

    def __repr__(self) -> str:
        return (
            f"WalkCorpus(num_walks={self.num_walks}, "
            f"max_walk_length={self.max_walk_length}, "
            f"mean_length={self.lengths.mean() if self.num_walks else 0:.2f})"
        )

    # ------------------------------------------------------------------
    def walk(self, index: int) -> np.ndarray:
        """Return walk ``index`` trimmed to its true length."""
        return self.matrix[index, : self.lengths[index]]

    def sentences(self, min_length: int = 1) -> Iterator[np.ndarray]:
        """Yield each walk (trimmed) with at least ``min_length`` nodes.

        word2vec training uses ``min_length=2`` — a single-node walk has
        no context pairs.
        """
        for i in range(self.num_walks):
            if self.lengths[i] >= min_length:
                yield self.matrix[i, : self.lengths[i]]

    def total_nodes(self) -> int:
        """Total node occurrences across all walks (corpus token count)."""
        return int(self.lengths.sum())

    def node_frequencies(self, num_nodes: int) -> np.ndarray:
        """Occurrence count of every node id across the corpus.

        Drives the unigram^0.75 negative-sampling table in word2vec.
        """
        flat = self.matrix[self.matrix != PAD]
        return np.bincount(flat, minlength=num_nodes)

    # ------------------------------------------------------------------
    # Fig. 4: the walk-length power law
    # ------------------------------------------------------------------
    def length_histogram(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(length_values, counts)`` over walks.

        On heavy-tailed temporal graphs this distribution is the Fig. 4
        power law: most walks terminate after 1-5 nodes because a
        randomly reached node rarely has a later-timestamped out-edge.
        """
        values, counts = np.unique(self.lengths, return_counts=True)
        return values, counts

    def length_fractions(self) -> dict[int, float]:
        """Length histogram normalized to fractions, keyed by length."""
        values, counts = self.length_histogram()
        total = counts.sum()
        return {int(v): float(c) / total for v, c in zip(values, counts)}

    # ------------------------------------------------------------------
    # Persistence (the artifact materializes walk output between stages)
    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Save the corpus as a compressed ``.npz`` bundle."""
        np.savez_compressed(
            path, matrix=self.matrix, lengths=self.lengths,
            start_nodes=self.start_nodes,
        )

    @classmethod
    def load(cls, path) -> "WalkCorpus":
        """Load a corpus saved by :meth:`save`."""
        with np.load(path) as data:
            missing = {"matrix", "lengths"} - set(data.files)
            if missing:
                raise WalkError(f"{path}: missing arrays {sorted(missing)}")
            start_nodes = (
                data["start_nodes"] if "start_nodes" in data.files else None
            )
            return cls(data["matrix"], data["lengths"],
                       start_nodes=start_nodes)

    # ------------------------------------------------------------------
    def validate_temporal_order(self, graph, direction: str = "forward"
                                ) -> bool:
        """Check every consecutive hop is a temporally-valid edge of ``graph``.

        Used by tests and as a debugging aid: for each walk, each step
        ``(w[i], w[i+1])`` must correspond to an edge whose timestamp is
        strictly greater (forward; Definition III.2) or strictly smaller
        (backward) than the previous step's.  This re-derives feasibility
        from the graph rather than trusting recorded timestamps.
        """
        forward = direction == "forward"
        for i in range(self.num_walks):
            walk = self.walk(i)
            current_time = -np.inf if forward else np.inf
            for a, b in zip(walk[:-1], walk[1:]):
                dsts, times = graph.neighbors(int(a))
                if forward:
                    feasible = times[(dsts == b) & (times > current_time)]
                else:
                    feasible = times[(dsts == b) & (times < current_time)]
                if len(feasible) == 0:
                    return False
                # The walk could have used any feasible timestamp; taking
                # the least-constraining one keeps the check sound (if no
                # consistent assignment exists greedily, none exists).
                current_time = (
                    float(feasible.min()) if forward else float(feasible.max())
                )
        return True
