"""Walk configuration.

These are the three knobs of the paper's accuracy-complexity trade-off
study (Fig. 8) plus the transition-bias choice (Eq. 1).  The paper's
recommended operating point is ``K=10`` walks per node, walk length
``L=6``, with the softmax temporal bias (§VII-A summary).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WalkError
from repro.walk.sampling import BIAS_CHOICES


@dataclass(frozen=True)
class WalkConfig:
    """Hyperparameters of the temporal random walk kernel.

    Parameters
    ----------
    num_walks_per_node:
        ``K`` in Algorithm 1 — how many independent walks start from every
        node.  Paper finds accuracy saturates at 8-10.
    max_walk_length:
        ``L`` — the maximum number of *nodes* in a walk (a walk of length
        L takes L-1 temporal steps).  Walks terminate early when a node has
        no temporally valid out-edge, which is what produces the power-law
        length distribution of Fig. 4.  Paper finds accuracy saturates at
        4-6.
    bias:
        Transition probability model; one of ``uniform``, ``softmax-late``
        (Eq. 1 exactly as printed — later timestamps more likely),
        ``softmax-recency`` (exponentially favors edges soonest after the
        current walk time, matching the Fig. 2 narrative), or ``linear``
        (rank-based recency decay).
    allow_equal:
        When True, an edge whose timestamp equals the current walk time is
        valid (the ``>=`` variant); default is the strict ``>`` of
        Definition III.2.
    temperature:
        The normalization term ``r`` of Eq. 1 (total timestamp span).
        ``None`` means "use the graph's time span", which is the paper's
        definition.
    time_window:
        Optional maximum timestamp gap per hop: an edge is only valid if
        its timestamp is within ``time_window`` of the current walk time.
        ``None`` (the paper's setting) allows arbitrarily distant future
        edges.  The CTDNE literature uses windows to keep walks within
        one behavioural epoch.
    direction:
        ``forward`` (the paper's Definition III.2: timestamps strictly
        increase) or ``backward`` (timestamps strictly decrease — walks
        into a node's history, the context variant some CTDNE follow-ups
        use).  Bias names keep their absolute-timestamp meaning in both
        directions: ``softmax-late`` always favors later timestamps,
        which for a backward walk means the edges nearest the current
        clock.
    num_windows:
        ``B`` — how many equal-width windows the batched kernel
        (``sampler="batched"``) partitions the graph's time axis into
        when it builds its per-(node, window) CDF prefix blocks.  More
        windows mean more table memory (``O(|V| * B)``) but a higher
        within-window rejection-sampling acceptance rate (roughly
        ``exp(-span_B / temperature)`` per window span ``span_B``); the
        default of 64 keeps acceptance above 98% at the paper's
        temperature (the full time span) while the tables stay a small
        multiple of the graph itself.  Ignored by the ``cdf`` and
        ``gumbel`` samplers.  The sampled distribution is exact for any
        value — this knob trades memory against constant-factor speed
        only.
    """

    num_walks_per_node: int = 10
    max_walk_length: int = 6
    bias: str = "softmax-recency"
    allow_equal: bool = False
    temperature: float | None = None
    time_window: float | None = None
    direction: str = "forward"
    num_windows: int = 64

    def __post_init__(self) -> None:
        if self.num_walks_per_node < 1:
            raise WalkError(
                f"num_walks_per_node must be >= 1, got {self.num_walks_per_node}"
            )
        if self.max_walk_length < 1:
            raise WalkError(
                f"max_walk_length must be >= 1, got {self.max_walk_length}"
            )
        if self.bias not in BIAS_CHOICES:
            raise WalkError(
                f"unknown bias {self.bias!r}; options: {sorted(BIAS_CHOICES)}"
            )
        if self.temperature is not None and self.temperature <= 0:
            raise WalkError(f"temperature must be > 0, got {self.temperature}")
        if self.time_window is not None and self.time_window <= 0:
            raise WalkError(
                f"time_window must be > 0, got {self.time_window}"
            )
        if self.direction not in ("forward", "backward"):
            raise WalkError(
                f"direction must be 'forward' or 'backward', got "
                f"{self.direction!r}"
            )
        if self.num_windows < 1:
            raise WalkError(
                f"num_windows must be >= 1, got {self.num_windows}"
            )

    @property
    def max_steps(self) -> int:
        """Number of edge transitions a full-length walk performs."""
        return self.max_walk_length - 1
