"""Read-only CSR graph sharing via ``multiprocessing.shared_memory``.

Walk workers need the whole graph but never mutate it.  Pickling the
three CSR arrays to every worker would copy the graph per process (and
dominate wall time on large graphs); instead the parent copies them
once into named shared-memory blocks and workers map the same physical
pages.  This mirrors what the paper's OpenMP threads get for free from
a shared address space.

Usage::

    with SharedCsrGraph.create(graph) as shared:
        spec = shared.spec          # small, picklable
        ... pass spec to workers ...
    # workers:
    with SharedCsrGraph.attach(spec) as graph_view:
        ... graph_view is a TemporalGraph over the shared pages ...

The parent owns the blocks and unlinks them on exit; workers only close
their mappings.
"""

from __future__ import annotations

import multiprocessing as mp
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.graph.csr import TemporalGraph


@dataclass(frozen=True)
class SharedGraphSpec:
    """Picklable description of a shared CSR graph (names + shapes)."""

    block_name: str
    num_nodes: int
    num_edges: int


def _layout(num_nodes: int, num_edges: int) -> tuple[int, int, int]:
    """Byte offsets of (dst, ts) and total size for one packed block.

    One block holds ``indptr | dst | ts`` back to back; all three are
    8-byte types so every section stays 8-byte aligned.
    """
    indptr_bytes = (num_nodes + 1) * 8
    edges_bytes = num_edges * 8
    return indptr_bytes, indptr_bytes + edges_bytes, indptr_bytes + 2 * edges_bytes


class SharedCsrGraph:
    """One CSR graph in a shared-memory block (parent or worker side)."""

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        spec: SharedGraphSpec,
        owner: bool,
    ) -> None:
        self._shm = shm
        self.spec = spec
        self._owner = owner
        dst_off, ts_off, _ = _layout(spec.num_nodes, spec.num_edges)
        indptr = np.ndarray(
            (spec.num_nodes + 1,), dtype=np.int64, buffer=shm.buf
        )
        dst = np.ndarray(
            (spec.num_edges,), dtype=np.int64, buffer=shm.buf, offset=dst_off
        )
        ts = np.ndarray(
            (spec.num_edges,), dtype=np.float64, buffer=shm.buf, offset=ts_off
        )
        self.arrays = (indptr, dst, ts)

    # ------------------------------------------------------------------
    @classmethod
    def create(cls, graph: TemporalGraph) -> "SharedCsrGraph":
        """Parent side: copy ``graph``'s CSR arrays into shared memory.

        The block never outlives a failed construction: if mapping the
        views or copying the arrays raises, the segment is closed *and
        unlinked* before the exception propagates, so no ``/dev/shm``
        entry can leak from this path.
        """
        _, _, total = _layout(graph.num_nodes, graph.num_edges)
        shm = shared_memory.SharedMemory(create=True, size=max(1, total))
        shared = None
        try:
            spec = SharedGraphSpec(shm.name, graph.num_nodes, graph.num_edges)
            shared = cls(shm, spec, owner=True)
            indptr, dst, ts = shared.arrays
            indptr[:] = graph.indptr
            dst[:] = graph.dst
            ts[:] = graph.ts
        except BaseException:
            if shared is not None:
                shared.arrays = ()  # release views so close() can unmap
                indptr = dst = ts = None
            try:
                shm.close()
            except BufferError:
                pass
            try:
                shm.unlink()
            except FileNotFoundError:
                pass
            raise
        return shared

    @classmethod
    def attach(cls, spec: SharedGraphSpec) -> "SharedCsrGraph":
        """Worker side: map an existing block by name."""
        shm = shared_memory.SharedMemory(name=spec.block_name)
        # Attaching registers the block with the resource tracker again
        # (bpo-39959).  Under spawn each worker runs its own tracker,
        # which would unlink the parent's block at worker exit — so
        # deregister.  Under fork the tracker is shared with the parent
        # (register is a set no-op) and deregistering here would break
        # the parent's own cleanup.
        if "fork" not in mp.get_all_start_methods():
            try:
                resource_tracker.unregister(shm._name, "shared_memory")
            except Exception:
                pass
        return cls(shm, spec, owner=False)

    # ------------------------------------------------------------------
    def graph(self) -> TemporalGraph:
        """A :class:`TemporalGraph` viewing the shared pages (no copy).

        Keep this :class:`SharedCsrGraph` alive (or use the context
        manager) for as long as the returned graph is in use.
        """
        indptr, dst, ts = self.arrays
        return TemporalGraph(indptr, dst, ts, validate=False)

    def close(self) -> None:
        """Drop this process's mapping; the owner also unlinks the block."""
        # Release the numpy views before closing the mmap.
        self.arrays = ()
        try:
            self._shm.close()
        except BufferError:
            # A caller still holds a view (error-path cleanup); the
            # mapping is reclaimed at process exit instead.
            pass
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass

    def __enter__(self) -> "SharedCsrGraph":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
