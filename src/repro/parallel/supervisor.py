"""Supervised shard execution: timeouts, retries, serial degradation.

PR 1's parallel layer drove its workers through ``Pool.starmap``, so a
single crashed, hung, or OOM-killed worker took the whole run down.
This module replaces that with explicit supervision: one process per
shard *attempt*, a wall-clock deadline per attempt, bounded retry, and
— when a shard keeps failing — degradation to in-process execution.

Determinism is the design constraint.  A shard is a pure function of
its argument tuple (the per-shard ``SeedSequence`` rides inside it), so
a retry re-derives the exact RNG stream the failed attempt had and the
recovered output is bit-identical to an uninjected run.  The serial
fallback calls an equivalent in-process function with the *same*
arguments, so even a fully degraded run produces identical results —
it is slower, never different.

Result transport is file-based: each worker atomically writes a pickled
``(status, value)`` payload and exits.  A missing payload means the
worker died before finishing (crash), an unreadable payload means it
was corrupted in flight; both are retried the same way.  Files beat
pipes here because a killed worker can never leave the parent blocked
on a half-written stream, and the temp directory is removed on every
exit path.

Fault injection (:mod:`repro.faults`) hooks into the worker entry
point: pre-execution faults (crash/hang/delay/error) fire before the
shard body, and ``corrupt`` garbles the payload after a successful
attempt.  The plan defaults to ``REPRO_FAULTS`` from the environment so
the CLI can be fault-tested without code changes.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import shutil
import tempfile
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.errors import WorkerError
from repro.faults import FaultPlan
from repro.observability import get_recorder


def _mp_context() -> mp.context.BaseContext:
    """Prefer fork (cheap, Linux); fall back to spawn elsewhere."""
    methods = mp.get_all_start_methods()
    return mp.get_context("fork" if "fork" in methods else "spawn")


@dataclass(frozen=True)
class SupervisorConfig:
    """Retry/timeout/degradation policy for supervised shards.

    ``shard_timeout`` is wall-clock seconds per *attempt* (None = no
    deadline, so hangs are not recoverable).  ``max_retries`` bounds
    extra attempts after the first, so a shard runs at most
    ``max_retries + 1`` times before degradation.  ``fallback_serial``
    permits in-process execution of shards whose retries are exhausted;
    with it disabled such shards raise :class:`WorkerError` instead.
    """

    shard_timeout: float | None = None
    max_retries: int = 2
    fallback_serial: bool = True
    poll_interval: float = 0.02

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise WorkerError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.shard_timeout is not None and self.shard_timeout <= 0:
            raise WorkerError(
                f"shard_timeout must be positive, got {self.shard_timeout}"
            )


@dataclass
class ShardReport:
    """Per-shard supervision outcome (for logging and tests)."""

    index: int
    attempts: int = 0
    outcome: str = "pending"  # "ok" | "degraded" | "failed"
    failures: list[str] = field(default_factory=list)


def _atomic_pickle(obj: object, path: str) -> None:
    """Write ``pickle(obj)`` so ``path`` is either absent or complete."""
    tmp = f"{path}.tmp"
    with open(tmp, "wb") as handle:
        pickle.dump(obj, handle, protocol=pickle.HIGHEST_PROTOCOL)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def _attempt_entry(
    fn: Callable,
    args: tuple,
    payload_path: str,
    site: str,
    shard_index: int,
    attempt: int,
    plan: FaultPlan,
) -> None:
    """Worker process body: run one shard attempt, persist the outcome.

    Always exits 0 after writing a payload — a clean worker exception
    becomes an ``("error", traceback)`` payload rather than a nonzero
    exit, so the parent can tell bugs (reported, retried with context)
    from abrupt deaths (no payload at all).
    """
    try:
        plan.fire(site, shard_index, attempt)
        result = fn(*args)
        payload = ("ok", result)
    except BaseException:
        payload = ("error", traceback.format_exc())
    _atomic_pickle(payload, payload_path)
    if plan.should_corrupt(site, shard_index, attempt):
        # Garble the payload *after* the atomic rename: the parent sees
        # a complete-looking file that fails integrity checks.
        with open(payload_path, "r+b") as handle:
            handle.seek(0)
            handle.write(b"\x00CORRUPTED\x00")


def _collect(payload_path: str, exitcode: int | None) -> tuple[bool, object]:
    """Read one attempt's payload; returns (ok, value-or-failure-reason)."""
    if not os.path.exists(payload_path):
        return False, f"worker died without a result (exit code {exitcode})"
    try:
        with open(payload_path, "rb") as handle:
            status, value = pickle.load(handle)
    except Exception as exc:
        return False, f"unreadable result payload ({exc!r})"
    finally:
        try:
            os.remove(payload_path)
        except OSError:
            pass
    if status == "ok":
        return True, value
    return False, str(value)


def _kill(proc: mp.process.BaseProcess) -> None:
    """Stop a worker hard: SIGTERM, brief grace, then SIGKILL."""
    try:
        proc.terminate()
        proc.join(0.5)
        if proc.is_alive():
            proc.kill()
            proc.join()
    except Exception:
        pass


def run_supervised(
    fn: Callable,
    arg_tuples: Sequence[tuple],
    *,
    workers: int,
    supervisor: SupervisorConfig | None = None,
    serial_fn: Callable | None = None,
    site: str = "shards",
    fault_plan: FaultPlan | None = None,
    mp_context: mp.context.BaseContext | None = None,
) -> tuple[list, list[ShardReport]]:
    """Run ``fn(*args)`` for every tuple under supervision.

    Returns ``(results, reports)`` with both lists in shard order —
    position ``i`` of ``results`` holds shard ``i``'s output no matter
    how many retries or which degradations happened, so downstream
    merges stay deterministic.

    ``serial_fn`` (same signature as ``fn``) is the in-process fallback
    used once a shard exhausts its retries; when it is None or
    ``supervisor.fallback_serial`` is False, exhausted shards raise
    :class:`WorkerError` carrying every recorded failure.
    """
    sup = supervisor or SupervisorConfig()
    plan = fault_plan if fault_plan is not None else FaultPlan.from_env()
    ctx = mp_context or _mp_context()
    rec = get_recorder()
    n = len(arg_tuples)
    results: list = [None] * n
    reports = [ShardReport(index=i) for i in range(n)]
    if n == 0:
        return results, reports
    if workers < 1:
        raise WorkerError(f"workers must be >= 1, got {workers}")

    pending: deque[int] = deque(range(n))
    # index -> (process, deadline, payload path, attempt start time);
    # the start time feeds the per-attempt trace span emitted at reap.
    running: dict[
        int, tuple[mp.process.BaseProcess, float | None, str, float]
    ] = {}
    degraded: list[int] = []
    tmpdir = tempfile.mkdtemp(prefix="repro-supervise-")

    def _attempt_span(index: int, started: float, outcome: str) -> None:
        rec.record_span(
            "shard_attempt",
            time.perf_counter() - started,
            site=site,
            shard=index,
            attempt=reports[index].attempts - 1,
            outcome=outcome,
        )

    def _settle_failure(index: int, reason: str) -> None:
        reports[index].failures.append(
            f"attempt {reports[index].attempts - 1}: {reason}"
        )
        if reports[index].attempts <= sup.max_retries:
            rec.counter("supervisor.retries")
            pending.append(index)
        else:
            degraded.append(index)

    try:
        while pending or running:
            while pending and len(running) < workers:
                index = pending.popleft()
                report = reports[index]
                payload_path = os.path.join(
                    tmpdir, f"shard-{index}-attempt-{report.attempts}.pkl"
                )
                proc = ctx.Process(
                    target=_attempt_entry,
                    args=(fn, tuple(arg_tuples[index]), payload_path,
                          site, index, report.attempts, plan),
                    daemon=True,
                )
                proc.start()
                deadline = (
                    None if sup.shard_timeout is None
                    else time.monotonic() + sup.shard_timeout
                )
                running[index] = (
                    proc, deadline, payload_path, time.perf_counter()
                )
                report.attempts += 1
                rec.counter("supervisor.attempts")

            reaped = False
            for index in list(running):
                proc, deadline, payload_path, started = running[index]
                if not proc.is_alive():
                    proc.join()
                    del running[index]
                    reaped = True
                    ok, value = _collect(payload_path, proc.exitcode)
                    if ok:
                        results[index] = value
                        reports[index].outcome = "ok"
                        _attempt_span(index, started, "ok")
                    else:
                        _attempt_span(index, started, "error")
                        _settle_failure(index, str(value))
                elif deadline is not None and time.monotonic() > deadline:
                    _kill(proc)
                    del running[index]
                    reaped = True
                    rec.counter("supervisor.timeouts")
                    _attempt_span(index, started, "timeout")
                    _settle_failure(
                        index, f"timed out after {sup.shard_timeout}s"
                    )
            if running and not reaped:
                time.sleep(sup.poll_interval)
    finally:
        for proc, _, _, _ in running.values():
            _kill(proc)
        shutil.rmtree(tmpdir, ignore_errors=True)

    if degraded:
        if not (sup.fallback_serial and serial_fn is not None):
            details = "; ".join(
                f"shard {i}: {reports[i].failures[-1]}" for i in degraded
            )
            raise WorkerError(
                f"{len(degraded)} shard(s) failed permanently at site "
                f"{site!r} after {sup.max_retries + 1} attempt(s) each "
                f"({details})"
            )
        for index in degraded:
            # Same arguments, in-process: bit-identical to what the
            # worker would have produced, just not parallel.
            rec.counter("supervisor.degraded")
            with rec.span("shard_degraded", site=site, shard=index):
                results[index] = serial_fn(*arg_tuples[index])
            reports[index].outcome = "degraded"
    return results, reports
