"""Data-parallel SGNS with periodic parameter averaging.

The paper's batched GPU word2vec (§V-B) lets all pairs in a batch read
a *stale* snapshot of the embedding matrices and relies on update
sparsity for accuracy.  :class:`ParallelSgnsTrainer` takes the same
idea one level up: sentences are sharded round-robin across worker
processes, every worker trains its shard against a private snapshot of
the model for one epoch (its updates are stale with respect to the
other workers'), and the parent averages the returned parameter
matrices between epochs.  This is the classic parameter-averaging SGD
layout; with SGNS's sparse touches, one-epoch staleness degrades
accuracy about as little as the in-batch staleness the paper measures.

``workers=1`` delegates to the serial trainers unchanged
(bit-identical results); ``workers=N`` is deterministic for fixed
``N`` — worker seeds come from ``SeedSequence.spawn`` on the root seed
and shard results are combined in worker order.
"""

from __future__ import annotations

import time

import numpy as np

from repro.errors import EmbeddingError
from repro.faults import FaultPlan
from repro.observability import get_recorder
from repro.rng import SeedLike, make_rng
from repro.embedding.batched import BatchedSgnsTrainer
from repro.embedding.negative import NegativeSampler
from repro.embedding.skipgram import SkipGramModel, generate_pairs
from repro.embedding.trainer import (
    SequentialSgnsTrainer,
    SgnsConfig,
    TrainerStats,
    publish_trainer_stats,
)
from repro.embedding.vocab import Vocabulary
from repro.parallel.supervisor import (
    ShardReport,
    SupervisorConfig,
    _mp_context,
    run_supervised,
)
from repro.walk.corpus import WalkCorpus


def _train_shard(
    sentences: list[np.ndarray],
    counts: np.ndarray,
    w_in: np.ndarray,
    w_out: np.ndarray,
    config: SgnsConfig,
    batch_sentences: int,
    seed_seq: np.random.SeedSequence,
    lr_frac0: float,
    lr_frac1: float,
) -> tuple[np.ndarray, np.ndarray, dict, list[float]]:
    """Worker body: one epoch of batched SGNS over one sentence shard.

    ``counts`` are the *global* corpus node frequencies, so every
    worker negative-samples from the same unigram^0.75 distribution
    and applies the same subsampling keep-probabilities as a serial
    run would.  The learning rate decays linearly from ``lr_frac0`` to
    ``lr_frac1`` of the global schedule across this shard's batches.
    """
    rng = np.random.default_rng(seed_seq)
    vocab = Vocabulary(counts)
    sampler = NegativeSampler(vocab)
    model = SkipGramModel.__new__(SkipGramModel)
    model.w_in = w_in.copy()
    model.w_out = w_out.copy()
    keep = (
        vocab.keep_probabilities(config.subsample_threshold)
        if config.subsample_threshold is not None
        else None
    )

    counters = {
        "pairs_trained": 0, "sentences": 0, "updates": 0, "fp_ops": 0,
        "loss_pair_sum": 0.0,
    }
    losses: list[float] = []
    num_batches = max(1, -(-len(sentences) // batch_sentences))
    batch_index = 0
    for base in range(0, len(sentences), batch_sentences):
        batch = sentences[base: base + batch_sentences]
        centers_parts: list[np.ndarray] = []
        contexts_parts: list[np.ndarray] = []
        for sentence in batch:
            if keep is not None:
                sentence = vocab.subsample_sentence(sentence, keep, rng)
                if len(sentence) < 2:
                    continue
            c, o = generate_pairs(
                sentence, config.window, rng, config.dynamic_window
            )
            if len(c):
                centers_parts.append(c)
                contexts_parts.append(o)
        frac = lr_frac0 + (batch_index / num_batches) * (lr_frac1 - lr_frac0)
        lr = max(
            config.min_learning_rate,
            config.learning_rate * (1.0 - min(1.0, frac)),
        )
        batch_index += 1
        counters["sentences"] += len(batch)
        if not centers_parts:
            continue
        centers = np.concatenate(centers_parts)
        contexts = np.concatenate(contexts_parts)
        negatives = sampler.sample_matrix(len(centers), config.negatives, rng)
        gc, go, gn, loss = model.batch_gradients(centers, contexts, negatives)
        model.apply_batch(
            centers, contexts, negatives, gc, go, gn, lr,
            update=config.update_mode, cap=config.update_cap,
        )
        counters["pairs_trained"] += len(centers)
        counters["updates"] += 1
        counters["fp_ops"] += (
            len(centers) * (1 + config.negatives) * 4 * config.dim
        )
        counters["loss_pair_sum"] += loss * len(centers)
        losses.append(loss)
    return model.w_in, model.w_out, counters, losses


class ParallelSgnsTrainer:
    """Sentence-sharded SGNS across processes, averaging each epoch.

    Drop-in alongside :class:`SequentialSgnsTrainer` /
    :class:`BatchedSgnsTrainer`: same ``train`` signature, same
    :class:`TrainerStats` contract (``mean_loss`` per-pair; work
    counters summed over workers; ``losses`` holds every worker's
    per-update trace in worker order, epoch by epoch).
    """

    def __init__(
        self,
        config: SgnsConfig,
        workers: int,
        batch_sentences: int | None = 1024,
        supervisor: SupervisorConfig | None = None,
        fault_plan: FaultPlan | None = None,
    ) -> None:
        if workers < 1:
            raise EmbeddingError(f"workers must be >= 1, got {workers}")
        self.config = config
        self.workers = workers
        self.batch_sentences = batch_sentences
        self.supervisor = supervisor
        self.fault_plan = fault_plan
        self.last_stats: TrainerStats | None = None
        self.last_shard_reports: list[ShardReport] = []

    # ------------------------------------------------------------------
    def train(
        self,
        corpus: WalkCorpus,
        num_nodes: int,
        seed: SeedLike = None,
        model: SkipGramModel | None = None,
    ) -> SkipGramModel:
        """Train SGNS over the corpus; returns the (possibly new) model."""
        if self.workers == 1:
            serial: SequentialSgnsTrainer | BatchedSgnsTrainer
            if self.batch_sentences is None:
                serial = SequentialSgnsTrainer(self.config)
            else:
                serial = BatchedSgnsTrainer(
                    self.config, batch_sentences=self.batch_sentences
                )
            result = serial.train(corpus, num_nodes, seed=seed, model=model)
            self.last_stats = serial.last_stats
            return result

        cfg = self.config
        rng = make_rng(seed)
        vocab = Vocabulary.from_corpus(corpus, num_nodes)
        if model is None:
            model = SkipGramModel(num_nodes, cfg.dim, seed=rng)
        batch = self.batch_sentences or 1

        stats = TrainerStats()
        start = time.perf_counter()
        sentences = [s for s in corpus.sentences(min_length=2)]
        # Round-robin sharding balances shard token counts even when
        # walk lengths are skewed (consecutive walks share a start
        # node, so contiguous shards would be imbalanced).
        shards = [sentences[w::self.workers] for w in range(self.workers)]
        shards = [s for s in shards if s]
        seed_seqs = rng.bit_generator.seed_seq.spawn(
            max(1, len(shards)) * cfg.epochs
        )

        ctx = _mp_context()
        rec = get_recorder()
        loss_pair_sum = 0.0
        self.last_shard_reports = []
        for epoch in range(cfg.epochs):
            frac0 = epoch / cfg.epochs
            frac1 = (epoch + 1) / cfg.epochs
            jobs = [
                (
                    shard, vocab.counts, model.w_in, model.w_out, cfg,
                    batch, seed_seqs[epoch * len(shards) + w],
                    frac0, frac1,
                )
                for w, shard in enumerate(shards)
            ]
            # Supervised execution: a crashed/hung/corrupted worker is
            # retried with the same seed material, and an incurable
            # shard runs in-process (``_train_shard`` is pure, so the
            # fallback is bit-identical to the worker path).
            with rec.span("sgns_epoch", epoch=epoch, trainer="parallel",
                          workers=len(shards)):
                results, reports = run_supervised(
                    _train_shard,
                    jobs,
                    workers=len(shards),
                    supervisor=self.supervisor,
                    serial_fn=_train_shard,
                    site="sgns",
                    fault_plan=self.fault_plan,
                    mp_context=ctx,
                )
            self.last_shard_reports.extend(reports)
            # Parameter averaging: every worker's epoch is stale
            # with respect to the others; the mean is the sync
            # point (the §V-B stale-read trick across processes).
            model.w_in = np.mean([r[0] for r in results], axis=0)
            model.w_out = np.mean([r[1] for r in results], axis=0)
            for _, _, counters, losses in results:
                stats.pairs_trained += counters["pairs_trained"]
                stats.sentences += counters["sentences"]
                stats.updates += counters["updates"]
                stats.fp_ops += counters["fp_ops"]
                loss_pair_sum += counters["loss_pair_sum"]
                stats.losses.extend(losses)

        stats.wall_seconds = time.perf_counter() - start
        stats.mean_loss = loss_pair_sum / max(1, stats.pairs_trained)
        self.last_stats = stats
        publish_trainer_stats(
            stats, negatives_drawn=stats.pairs_trained * cfg.negatives
        )
        return model
