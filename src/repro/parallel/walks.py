"""Walk-phase sharding across worker processes.

Algorithm 1's middle loop ("for every vertex") is what the paper
parallelizes with work-stealing OpenMP threads.  The process analogue:
partition ``start_nodes`` into contiguous shards, run a full
:class:`~repro.walk.engine.TemporalWalkEngine` per worker against the
shared-memory CSR graph, then concatenate the padded walk matrices and
merge the per-shard :class:`~repro.walk.engine.WalkStats` (counters
summed, ``work_per_start_node`` added elementwise — every worker
returns a full ``num_nodes``-sized array, so the merge is exact).

Workers run under :func:`~repro.parallel.supervisor.run_supervised`:
a crashed, hung, or corrupted shard is retried with the same
``SeedSequence`` (bit-identical recovery), and a shard that keeps
failing degrades to in-process execution against the parent's own
graph — same arguments, same output, no shared-memory attach.

Determinism: per-worker seeds derive from the root seed via
``SeedSequence.spawn``, so ``workers=N`` is reproducible for fixed
``N`` under any combination of retries and degradations.  ``workers=1``
runs in-process with the caller's generator and is bit-identical to
:meth:`TemporalWalkEngine.run`.  Walk *row order* differs between
worker counts (serial interleaves all nodes K times; shards interleave
within themselves), but every start node contributes exactly ``K``
walks under any worker count.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import WalkError
from repro.faults import FaultPlan
from repro.observability import NULL_RECORDER, use_recorder
from repro.rng import SeedLike, make_rng
from repro.graph.csr import TemporalGraph
from repro.parallel.shared_graph import SharedCsrGraph, SharedGraphSpec
from repro.parallel.supervisor import (
    ShardReport,
    SupervisorConfig,
    _mp_context,
    run_supervised,
)
from repro.walk.batched import make_walk_engine
from repro.walk.config import WalkConfig
from repro.walk.corpus import WalkCorpus
from repro.walk.engine import WalkStats, publish_walk_stats


def shard_indices(num_items: int, workers: int) -> list[np.ndarray]:
    """Contiguous near-equal index shards, one per worker.

    Contiguous (rather than strided) shards keep each worker's CSR
    accesses clustered, the same reason OpenMP static chunks are
    contiguous; empty shards are dropped.
    """
    if workers < 1:
        raise WalkError(f"workers must be >= 1, got {workers}")
    bounds = np.linspace(0, num_items, workers + 1).astype(np.int64)
    return [
        np.arange(bounds[i], bounds[i + 1], dtype=np.int64)
        for i in range(workers)
        if bounds[i + 1] > bounds[i]
    ]


def merge_walk_stats(parts: Sequence[WalkStats]) -> WalkStats:
    """Sum shard counters; ``work_per_start_node`` adds elementwise."""
    if not parts:
        return WalkStats()
    merged = WalkStats(
        num_walks=sum(p.num_walks for p in parts),
        total_steps=sum(p.total_steps for p in parts),
        candidates_scanned=sum(p.candidates_scanned for p in parts),
        search_iterations=sum(p.search_iterations for p in parts),
        terminated_early=sum(p.terminated_early for p in parts),
        exp_evaluations=sum(p.exp_evaluations for p in parts),
        cdf_search_iterations=sum(p.cdf_search_iterations for p in parts),
        work_per_start_node=np.zeros_like(parts[0].work_per_start_node),
    )
    for p in parts:
        if p.work_per_start_node.shape != merged.work_per_start_node.shape:
            raise WalkError(
                "cannot merge WalkStats with mismatched work_per_start_node "
                f"shapes {p.work_per_start_node.shape} vs "
                f"{merged.work_per_start_node.shape}"
            )
        merged.work_per_start_node += p.work_per_start_node
    return merged


def _run_shard_engine(
    graph: TemporalGraph,
    sampler: str,
    config: WalkConfig,
    shard: np.ndarray,
    seed_seq: np.random.SeedSequence,
    start_time: float | None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, WalkStats]:
    """One shard of start nodes through a fresh engine (any process).

    ``sampler`` may name any kernel (``cdf``, ``gumbel``, ``batched``);
    each worker builds its own engine, so the batched kernel's tables
    are built once per shard against the shared-memory CSR arrays.
    """
    engine = make_walk_engine(graph, sampler=sampler)
    # The parent publishes the *merged* stats once; silencing the
    # per-shard run keeps in-parent degraded shards from double-counting.
    with use_recorder(NULL_RECORDER):
        corpus = engine.run(
            config,
            seed=np.random.default_rng(seed_seq),
            start_nodes=shard,
            start_time=start_time,
        )
    stats = engine.last_stats
    assert stats is not None
    return corpus.matrix, corpus.lengths, corpus.start_nodes, stats


def _walk_shard(
    spec: SharedGraphSpec,
    sampler: str,
    config: WalkConfig,
    shard: np.ndarray,
    seed_seq: np.random.SeedSequence,
    start_time: float | None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, WalkStats]:
    """Worker body: run the engine over one shard of start nodes."""
    shared = SharedCsrGraph.attach(spec)
    try:
        result = _run_shard_engine(
            shared.graph(), sampler, config, shard, seed_seq, start_time
        )
        return result
    finally:
        # Drop every view of the shared pages before closing the mapping
        # (a live exported buffer would make mmap.close() raise).
        shared.close()


def run_parallel_walks(
    graph: TemporalGraph,
    config: WalkConfig,
    workers: int,
    seed: SeedLike = None,
    start_nodes: np.ndarray | None = None,
    start_time: float | None = None,
    sampler: str = "cdf",
    supervisor: SupervisorConfig | None = None,
    fault_plan: FaultPlan | None = None,
    shard_reports: list[ShardReport] | None = None,
) -> tuple[WalkCorpus, WalkStats]:
    """Phase-1 front door: ``K`` walks per start node across processes.

    Returns ``(corpus, merged_stats)``.  ``workers=1`` executes
    in-process (bit-identical to the serial engine); ``workers=N``
    shards ``start_nodes`` contiguously, shares the CSR arrays through
    shared memory, and merges the per-shard results in shard order.

    ``supervisor`` sets the per-shard timeout/retry/degradation policy
    (defaults: no timeout, 2 retries, serial fallback allowed) and
    ``fault_plan`` overrides the ambient ``REPRO_FAULTS`` injection
    plan.  Pass an empty list as ``shard_reports`` to receive the
    per-shard :class:`ShardReport` outcomes.
    """
    if workers < 1:
        raise WalkError(f"workers must be >= 1, got {workers}")
    if workers == 1:
        engine = make_walk_engine(graph, sampler=sampler)
        corpus = engine.run(
            config, seed=seed, start_nodes=start_nodes, start_time=start_time
        )
        assert engine.last_stats is not None
        return corpus, engine.last_stats

    if start_nodes is None:
        start_nodes = np.arange(graph.num_nodes, dtype=np.int64)
    else:
        start_nodes = np.ascontiguousarray(start_nodes, dtype=np.int64)
    shards = [start_nodes[idx] for idx in shard_indices(len(start_nodes), workers)]
    root = make_rng(seed)
    seed_seqs = root.bit_generator.seed_seq.spawn(len(shards))

    shared = SharedCsrGraph.create(graph)
    try:
        argsets = [
            (shared.spec, sampler, config, shard, seq, start_time)
            for shard, seq in zip(shards, seed_seqs)
        ]

        def _serial_fallback(spec, sampler_, config_, shard, seq, start_time_):
            # In-parent degradation path: identical arguments against the
            # parent's own graph object (no shared-memory attach, so a
            # sick segment can never block recovery).
            return _run_shard_engine(
                graph, sampler_, config_, shard, seq, start_time_
            )

        parts, reports = run_supervised(
            _walk_shard,
            argsets,
            workers=len(shards),
            supervisor=supervisor,
            serial_fn=_serial_fallback,
            site="walks",
            fault_plan=fault_plan,
            mp_context=_mp_context(),
        )
        if shard_reports is not None:
            shard_reports.extend(reports)
    finally:
        shared.close()

    matrices, lengths, starts, stats = zip(*parts)
    corpus = WalkCorpus(
        np.vstack(matrices),
        np.concatenate(lengths),
        start_nodes=np.concatenate(starts),
    )
    merged = merge_walk_stats(stats)
    publish_walk_stats(merged)
    return corpus, merged
