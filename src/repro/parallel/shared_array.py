"""One numpy array in a ``multiprocessing.shared_memory`` block.

:class:`~repro.parallel.shared_graph.SharedCsrGraph` shares the three
CSR arrays of a graph; the sharded serving tier needs the same move for
arbitrary matrices — each :class:`~repro.serving.sharding
.ShardedPublisher` publish copies one embedding slice per shard into a
named block, ships the tiny picklable :class:`SharedArraySpec` over the
worker's command pipe, and the worker maps the same physical pages
instead of unpickling megabytes through the pipe.

Ownership follows the CSR helper: the creator owns the block and
unlinks it on :meth:`close`; attachers only drop their mapping.  The
intended publish lifecycle is create → send spec → worker attaches,
copies, closes, acks → creator closes (unlinks).
"""

from __future__ import annotations

import multiprocessing as mp
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.errors import WorkerError


@dataclass(frozen=True)
class SharedArraySpec:
    """Picklable description of a shared array (name + shape + dtype)."""

    block_name: str
    shape: tuple[int, ...]
    dtype: str


class SharedArray:
    """One ndarray in a shared-memory block (creator or attacher side)."""

    def __init__(self, shm: shared_memory.SharedMemory,
                 spec: SharedArraySpec, owner: bool) -> None:
        self._shm = shm
        self.spec = spec
        self._owner = owner
        self.array = np.ndarray(
            spec.shape, dtype=np.dtype(spec.dtype), buffer=shm.buf
        )

    # ------------------------------------------------------------------
    @classmethod
    def create(cls, array: np.ndarray) -> "SharedArray":
        """Creator side: copy ``array`` into a fresh shared block.

        As with :meth:`SharedCsrGraph.create`, a failed construction
        closes *and unlinks* the segment before the exception
        propagates, so no ``/dev/shm`` entry can leak from this path.
        """
        array = np.ascontiguousarray(array)
        if array.dtype.hasobject:
            raise WorkerError(
                f"cannot share object-dtype array (dtype {array.dtype})"
            )
        shm = shared_memory.SharedMemory(
            create=True, size=max(1, array.nbytes)
        )
        shared = None
        try:
            spec = SharedArraySpec(shm.name, tuple(array.shape),
                                   array.dtype.str)
            shared = cls(shm, spec, owner=True)
            shared.array[...] = array
        except BaseException:
            if shared is not None:
                shared.array = None  # release the view so close() can unmap
            try:
                shm.close()
            except BufferError:
                pass
            try:
                shm.unlink()
            except FileNotFoundError:
                pass
            raise
        return shared

    @classmethod
    def attach(cls, spec: SharedArraySpec) -> "SharedArray":
        """Attacher side: map an existing block by name."""
        shm = shared_memory.SharedMemory(name=spec.block_name)
        # Same bpo-39959 dance as SharedCsrGraph.attach: under spawn
        # each worker runs its own resource tracker which would unlink
        # the creator's block at worker exit, so deregister; under fork
        # the tracker is shared and deregistering would break the
        # creator's cleanup.
        if "fork" not in mp.get_all_start_methods():
            try:
                resource_tracker.unregister(shm._name, "shared_memory")
            except Exception:
                pass
        return cls(shm, spec, owner=False)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drop this process's mapping; the owner also unlinks the block."""
        self.array = None
        try:
            self._shm.close()
        except BufferError:
            # A caller still holds a view (error-path cleanup); the
            # mapping is reclaimed at process exit instead.
            pass
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass

    def __enter__(self) -> "SharedArray":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
