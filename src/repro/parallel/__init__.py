"""Multiprocess parallel execution of the two hot pipeline phases.

The paper's hardware story (Fig. 10, Table III) is about *thread
scaling* of the temporal-walk and word2vec kernels; the serial numpy
engine only models it (:mod:`repro.hwmodel.threads`).  This package
executes both phases across worker **processes**:

- :func:`run_parallel_walks` shards ``start_nodes`` across workers,
  each running :class:`~repro.walk.engine.TemporalWalkEngine` against
  the CSR graph shared read-only through ``multiprocessing.shared_memory``
  (:class:`SharedCsrGraph`), then concatenates the walk matrices and
  merges the :class:`~repro.walk.engine.WalkStats`;
- :class:`ParallelSgnsTrainer` shards sentences across workers that
  each train on a parameter snapshot and periodically average — the
  paper's stale-read batching taken one level up.

Both phases run under :mod:`repro.parallel.supervisor`: every shard
attempt has an optional wall-clock deadline, failed shards (crash,
hang, corrupt result, clean exception) are retried a bounded number of
times with the *same* seed material, and incurable shards degrade to
in-process execution — all recovery paths produce bit-identical output
to an uninjected run.  Failures are testable on demand through
:mod:`repro.faults` (``REPRO_FAULTS`` or an explicit plan).

``workers=1`` is bit-identical to the serial path; ``workers=N`` is
reproducible for fixed ``N`` (per-worker seeds derive from the root
seed via ``SeedSequence.spawn``).  Wire-up lives in
``PipelineConfig(workers=...)`` and the CLI ``--workers`` flag; the
measured scaling curve (``benchmarks/bench_parallel_scaling.py``) is
what :func:`repro.hwmodel.threads.compare_to_measured` validates the
analytic scheduler model against.
"""

from repro.parallel.shared_array import SharedArray, SharedArraySpec
from repro.parallel.shared_graph import SharedCsrGraph, SharedGraphSpec
from repro.parallel.sgns import ParallelSgnsTrainer
from repro.parallel.supervisor import (
    ShardReport,
    SupervisorConfig,
    run_supervised,
)
from repro.parallel.walks import merge_walk_stats, run_parallel_walks, shard_indices

__all__ = [
    "SharedArray",
    "SharedArraySpec",
    "SharedCsrGraph",
    "SharedGraphSpec",
    "ParallelSgnsTrainer",
    "ShardReport",
    "SupervisorConfig",
    "merge_walk_stats",
    "run_parallel_walks",
    "run_supervised",
    "shard_indices",
]
