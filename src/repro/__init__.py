"""repro — random walk-based temporal graph learning.

A complete Python reproduction of "A Deep Dive Into Understanding The
Random Walk-Based Temporal Graph Learning" (IISWC 2021): the CTDNE-style
pipeline (temporal random walks -> word2vec -> FNN classifiers for link
prediction and node classification), every substrate it depends on, and
the hardware-characterization models behind the paper's evaluation.

Quickstart::

    from repro import Pipeline, PipelineConfig, generators

    edges = generators.ia_email_like(seed=0)
    result = Pipeline(PipelineConfig(treat_undirected=True)
                      ).run_link_prediction(edges, seed=0)
    print(result.summary())

Package map:

- :mod:`repro.graph` — temporal edge lists, CSR graphs, generators, I/O;
- :mod:`repro.walk` — Algorithm 1, the temporal random walk engine;
- :mod:`repro.embedding` — word2vec SGNS (sequential + batched);
- :mod:`repro.nn` — the FNN substrate (layers, losses, SGD, metrics);
- :mod:`repro.tasks` — data preparation, the downstream tasks, and the
  end-to-end :class:`Pipeline`;
- :mod:`repro.parallel` — multiprocess execution of the walk and
  word2vec phases (``PipelineConfig(workers=N)``);
- :mod:`repro.hwmodel` — instruction/cache/GPU/thread models for the
  hardware study;
- :mod:`repro.baselines` — BFS, VGG, GCN, static DeepWalk comparisons.
"""

from repro.graph import (
    TemporalEdge,
    TemporalEdgeList,
    TemporalGraph,
    compute_stats,
    generators,
)
from repro.graph.io import LabeledTemporalDataset, read_wel, write_wel
from repro.walk import TemporalWalkEngine, WalkConfig, WalkCorpus
from repro.embedding import NodeEmbeddings, SgnsConfig, train_embeddings
from repro.tasks import (
    LinkPredictionTask,
    LinkPropertyPredictionTask,
    NodeClassificationTask,
    Pipeline,
    PipelineConfig,
    PipelineResult,
)

__version__ = "1.0.0"

__all__ = [
    "TemporalEdge",
    "TemporalEdgeList",
    "TemporalGraph",
    "compute_stats",
    "generators",
    "LabeledTemporalDataset",
    "read_wel",
    "write_wel",
    "TemporalWalkEngine",
    "WalkConfig",
    "WalkCorpus",
    "NodeEmbeddings",
    "SgnsConfig",
    "train_embeddings",
    "LinkPredictionTask",
    "NodeClassificationTask",
    "LinkPropertyPredictionTask",
    "Pipeline",
    "PipelineConfig",
    "PipelineResult",
    "__version__",
]
