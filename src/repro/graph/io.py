"""Graph file I/O.

The artifact appendix prepares every dataset as a ``.wel`` file — one
``src dst timestamp`` triple per line, comment lines starting with ``#``
removed, timestamps normalized into [0, 1].  We implement that format,
plus an ``.npz`` bundle for labeled node-classification datasets (the
paper's artifact ships those as ``.npz`` with a temporal graph and
train/valid/test label files).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.edges import TemporalEdgeList


def read_wel(path: str | os.PathLike, normalize: bool = True) -> TemporalEdgeList:
    """Read a weighted-edge-list (``.wel``) temporal graph file.

    Each non-comment line is ``src dst timestamp`` (whitespace separated).
    Lines starting with ``#`` or ``%`` are skipped, matching the artifact's
    preprocessing instructions.  With ``normalize`` (the default, as in the
    artifact's ``preprocess_dataset.py``), timestamps are rescaled to
    [0, 1].
    """
    src: list[int] = []
    dst: list[int] = []
    ts: list[float] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith(("#", "%")):
                continue
            parts = stripped.split()
            if len(parts) < 3:
                raise GraphFormatError(
                    f"{path}:{lineno}: expected 'src dst timestamp', got {stripped!r}"
                )
            try:
                src.append(int(parts[0]))
                dst.append(int(parts[1]))
                ts.append(float(parts[2]))
            except ValueError as exc:
                raise GraphFormatError(f"{path}:{lineno}: {exc}") from exc
    edges = TemporalEdgeList(src, dst, ts)
    if normalize:
        edges = edges.with_normalized_timestamps()
    return edges


def write_wel(edges: TemporalEdgeList, path: str | os.PathLike) -> None:
    """Write an edge list in ``.wel`` format (``src dst timestamp`` rows)."""
    with open(path, "w", encoding="utf-8") as handle:
        for u, v, t in zip(edges.src, edges.dst, edges.timestamps):
            handle.write(f"{u} {v} {t:.10g}\n")


@dataclass
class LabeledTemporalDataset:
    """A temporal graph plus per-node class labels.

    This is the node-classification input format (Table II's dblp3, dblp5
    and brain datasets): a temporal edge stream and an integer label per
    node.  ``name`` identifies the dataset in experiment reports.
    """

    name: str
    edges: TemporalEdgeList
    labels: np.ndarray
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.labels = np.ascontiguousarray(self.labels, dtype=np.int64)
        if len(self.labels) != self.edges.num_nodes:
            raise GraphFormatError(
                f"dataset {self.name!r}: {len(self.labels)} labels for "
                f"{self.edges.num_nodes} nodes"
            )

    @property
    def num_classes(self) -> int:
        """Number of distinct labels (max id + 1)."""
        if len(self.labels) == 0:
            return 0
        return int(self.labels.max()) + 1

    def save(self, path: str | os.PathLike) -> None:
        """Save as a ``.npz`` bundle (edges + labels + name)."""
        np.savez_compressed(
            path,
            src=self.edges.src,
            dst=self.edges.dst,
            timestamps=self.edges.timestamps,
            labels=self.labels,
            num_nodes=np.int64(self.edges.num_nodes),
            name=np.bytes_(self.name.encode("utf-8")),
        )

    @classmethod
    def load(cls, path: str | os.PathLike) -> "LabeledTemporalDataset":
        """Load a ``.npz`` bundle written by :meth:`save`."""
        with np.load(path) as data:
            required = {"src", "dst", "timestamps", "labels", "num_nodes"}
            missing = required - set(data.files)
            if missing:
                raise GraphFormatError(
                    f"{path}: missing arrays {sorted(missing)} in bundle"
                )
            edges = TemporalEdgeList(
                data["src"],
                data["dst"],
                data["timestamps"],
                num_nodes=int(data["num_nodes"]),
            )
            name = (
                bytes(data["name"]).decode("utf-8") if "name" in data.files else ""
            )
            return cls(name=name, edges=edges, labels=data["labels"])
