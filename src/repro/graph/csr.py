"""CSR temporal graph.

The paper stores temporal networks in the GAPBS ``WGraph`` CSR structure,
repurposing the per-edge weight field for timestamps and preserving
multi-edges (§V-A).  :class:`TemporalGraph` is the same design in numpy:

- ``indptr`` — ``num_nodes + 1`` offsets into the edge arrays;
- ``dst`` — destination node per out-edge;
- ``ts`` — timestamp per out-edge.

Within each source node's adjacency slice, edges are sorted by ascending
timestamp.  That ordering is the load-bearing optimization: the temporal
neighborhood "edges of ``u`` with timestamp greater than the current walk
time" becomes a single binary search (``searchsorted``) plus a contiguous
slice, which is what makes Algorithm 1's inner sampling step cheap.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.graph.edges import TemporalEdgeList


class TemporalGraph:
    """Directed temporal graph in CSR form with time-sorted adjacency.

    Build with :meth:`from_edge_list` (the normal path) or pass raw CSR
    arrays directly (they are validated).
    """

    def __init__(
        self,
        indptr: np.ndarray,
        dst: np.ndarray,
        ts: np.ndarray,
        validate: bool = True,
    ) -> None:
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.dst = np.ascontiguousarray(dst, dtype=np.int64)
        self.ts = np.ascontiguousarray(ts, dtype=np.float64)
        if validate:
            self._validate()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edge_list(
        cls, edges: TemporalEdgeList, num_nodes: int | None = None
    ) -> "TemporalGraph":
        """Build a CSR graph from a temporal edge list.

        Multi-edges are preserved.  Adjacency of each source is sorted by
        timestamp (ties keep input order via a stable sort).
        """
        n = num_nodes if num_nodes is not None else edges.num_nodes
        if n < edges.num_nodes:
            raise GraphError(
                f"num_nodes={n} smaller than edge list's {edges.num_nodes}"
            )
        counts = np.bincount(edges.src, minlength=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        # Group by source then timestamp with one stable lexsort-style pass:
        # sort by timestamp first, then stably by source, so ties keep the
        # timestamp order.
        order = np.argsort(edges.timestamps, kind="stable")
        order = order[np.argsort(edges.src[order], kind="stable")]
        return cls(indptr, edges.dst[order], edges.timestamps[order], validate=False)

    def _validate(self) -> None:
        if self.indptr.ndim != 1 or len(self.indptr) < 1:
            raise GraphError("indptr must be a 1-D array of length num_nodes + 1")
        if self.indptr[0] != 0:
            raise GraphError("indptr must start at 0")
        if np.any(np.diff(self.indptr) < 0):
            raise GraphError("indptr must be non-decreasing")
        if self.indptr[-1] != len(self.dst):
            raise GraphError(
                f"indptr[-1]={self.indptr[-1]} must equal num_edges={len(self.dst)}"
            )
        if len(self.dst) != len(self.ts):
            raise GraphError("dst and ts must have equal length")
        if len(self.dst) and (self.dst.min() < 0 or self.dst.max() >= self.num_nodes):
            raise GraphError("dst contains out-of-range node ids")
        for v in range(self.num_nodes):
            lo, hi = self.indptr[v], self.indptr[v + 1]
            if hi - lo > 1 and np.any(np.diff(self.ts[lo:hi]) < 0):
                raise GraphError(f"adjacency of node {v} is not time-sorted")

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes (vocabulary size)."""
        return len(self.indptr) - 1

    @property
    def num_edges(self) -> int:
        """Number of temporal edges."""
        return len(self.dst)

    def out_degree(self, node: int | np.ndarray) -> int | np.ndarray:
        """Out-degree of one node (int) or an array of nodes (array)."""
        deg = self.indptr[np.asarray(node) + 1] - self.indptr[np.asarray(node)]
        if np.isscalar(node) or np.ndim(node) == 0:
            return int(deg)
        return deg

    def out_degrees(self) -> np.ndarray:
        """Array of out-degrees for all nodes."""
        return np.diff(self.indptr)

    def max_degree(self) -> int:
        """Maximum out-degree (the ``M`` in the O(K·N·|V|·M) complexity)."""
        if self.num_nodes == 0:
            return 0
        return int(self.out_degrees().max())

    def __repr__(self) -> str:
        return (
            f"TemporalGraph(num_nodes={self.num_nodes}, "
            f"num_edges={self.num_edges})"
        )

    # ------------------------------------------------------------------
    # Adjacency queries
    # ------------------------------------------------------------------
    def neighbors(self, node: int) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(dst, ts)`` views of all out-edges of ``node``."""
        lo, hi = self.indptr[node], self.indptr[node + 1]
        return self.dst[lo:hi], self.ts[lo:hi]

    def temporal_neighbor_range(
        self, node: int, after: float, allow_equal: bool = False
    ) -> tuple[int, int]:
        """Return the ``[lo, hi)`` edge-index range that is temporally valid.

        Valid means timestamp strictly greater than ``after`` (Definition
        III.2), or ``>= after`` when ``allow_equal`` is set.  Because each
        adjacency slice is time-sorted, this is one binary search.
        """
        base, end = int(self.indptr[node]), int(self.indptr[node + 1])
        side = "left" if allow_equal else "right"
        lo = base + int(np.searchsorted(self.ts[base:end], after, side=side))
        return lo, end

    def temporal_neighbors(
        self, node: int, after: float, allow_equal: bool = False
    ) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(dst, ts)`` of temporally valid out-edges of ``node``.

        This is the set :math:`N_u` of §IV-A restricted to edges usable at
        walk time ``after``.
        """
        lo, hi = self.temporal_neighbor_range(node, after, allow_equal)
        return self.dst[lo:hi], self.ts[lo:hi]

    def has_temporal_neighbor(
        self, node: int, after: float, allow_equal: bool = False
    ) -> bool:
        """True when ``node`` has at least one temporally valid out-edge."""
        lo, hi = self.temporal_neighbor_range(node, after, allow_equal)
        return lo < hi

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def to_edge_list(self) -> TemporalEdgeList:
        """Flatten back to a (src-grouped, time-sorted) edge list."""
        src = np.repeat(np.arange(self.num_nodes, dtype=np.int64), self.out_degrees())
        return TemporalEdgeList(src, self.dst, self.ts, num_nodes=self.num_nodes)

    def edge_key_set(self) -> set[tuple[int, int]]:
        """Distinct ``(src, dst)`` pairs (multi-edges collapse to one key)."""
        src = np.repeat(np.arange(self.num_nodes, dtype=np.int64), self.out_degrees())
        return set(zip(src.tolist(), self.dst.tolist()))

    def time_span(self) -> float:
        """``max(ts) - min(ts)`` over all edges; the ``r`` of Eq. 1."""
        if self.num_edges == 0:
            return 0.0
        return float(self.ts.max() - self.ts.min())
