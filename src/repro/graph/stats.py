"""Graph statistics.

These drive Table II (dataset inventory) and feed the hardware models
(degree distribution determines load imbalance; timestamp distribution
determines walk termination behaviour).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import TemporalGraph


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics of a temporal graph (one Table II row)."""

    num_nodes: int
    num_edges: int
    max_degree: int
    mean_degree: float
    degree_std: float
    degree_gini: float
    time_span: float
    num_isolated: int

    def as_row(self) -> dict[str, float | int]:
        """Dict form for table rendering."""
        return {
            "nodes": self.num_nodes,
            "edges": self.num_edges,
            "max_deg": self.max_degree,
            "mean_deg": round(self.mean_degree, 2),
            "deg_std": round(self.degree_std, 2),
            "deg_gini": round(self.degree_gini, 3),
            "isolated": self.num_isolated,
        }


def gini(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative array (0 = uniform, →1 = skewed).

    Used as a scalar measure of degree skew: power-law graphs (wiki-talk,
    stackoverflow shapes) have high Gini; Erdős–Rényi graphs low.
    """
    v = np.sort(np.asarray(values, dtype=np.float64))
    if len(v) == 0:
        return 0.0
    total = v.sum()
    if total == 0:
        return 0.0
    n = len(v)
    # Standard formulation: G = (2 * sum(i * v_i) / (n * sum(v))) - (n+1)/n
    index = np.arange(1, n + 1)
    return float((2.0 * np.dot(index, v)) / (n * total) - (n + 1.0) / n)


def compute_stats(graph: TemporalGraph) -> GraphStats:
    """Compute :class:`GraphStats` for ``graph``."""
    degrees = graph.out_degrees()
    return GraphStats(
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        max_degree=graph.max_degree(),
        mean_degree=float(degrees.mean()) if graph.num_nodes else 0.0,
        degree_std=float(degrees.std()) if graph.num_nodes else 0.0,
        degree_gini=gini(degrees),
        time_span=graph.time_span(),
        num_isolated=int(np.sum(degrees == 0)),
    )


def degree_histogram(graph: TemporalGraph) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(degree_values, counts)`` of the out-degree distribution."""
    degrees = graph.out_degrees()
    if len(degrees) == 0:
        return np.array([], dtype=np.int64), np.array([], dtype=np.int64)
    values, counts = np.unique(degrees, return_counts=True)
    return values, counts


def powerlaw_exponent_estimate(graph: TemporalGraph, d_min: int = 1) -> float:
    """Maximum-likelihood estimate of the degree power-law exponent.

    Uses the discrete Hill estimator
    ``alpha = 1 + n / sum(ln(d_i / (d_min - 0.5)))`` over degrees
    ``>= d_min``.  Real-world graphs in Table II have alpha roughly in
    [1.5, 3]; Erdős–Rényi graphs produce much larger (meaningless) values,
    which is itself a useful discriminator in tests.
    """
    degrees = graph.out_degrees()
    degrees = degrees[degrees >= d_min]
    if len(degrees) == 0:
        return float("nan")
    return float(1.0 + len(degrees) / np.sum(np.log(degrees / (d_min - 0.5))))
