"""Snapshot views of a temporal graph.

Much prior work processes a temporal graph as a sequence of static
snapshots (§II-B).  We provide snapshot extraction both as a utility and as
the substrate for the snapshot-model baseline used in ablations: it is the
"information loss" strawman the paper's introduction argues against.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import TemporalGraph
from repro.graph.edges import TemporalEdgeList


def snapshot_at(graph: TemporalGraph, time: float) -> TemporalGraph:
    """Return the static snapshot ``G_t``: all edges with timestamp <= t.

    Edge timestamps are preserved in the result (so it remains a valid
    :class:`TemporalGraph`), but every edge in it is usable at time ``t``.
    """
    edges = graph.to_edge_list()
    kept = edges.filter_time_range(-np.inf, time)
    return TemporalGraph.from_edge_list(kept, num_nodes=graph.num_nodes)


def snapshot_sequence(
    graph: TemporalGraph, num_snapshots: int
) -> list[TemporalGraph]:
    """Split the time span into equal windows and return cumulative snapshots.

    Snapshot ``i`` contains all edges up to the end of window ``i`` —
    the standard cumulative snapshot model from the dynamic-network
    literature (§II-B).
    """
    if num_snapshots < 1:
        raise ValueError(f"num_snapshots must be >= 1, got {num_snapshots}")
    if graph.num_edges == 0:
        return [graph] * num_snapshots
    lo = float(graph.ts.min())
    hi = float(graph.ts.max())
    cuts = np.linspace(lo, hi, num_snapshots + 1)[1:]
    return [snapshot_at(graph, float(c)) for c in cuts]


def window_edge_lists(
    graph: TemporalGraph, num_windows: int
) -> list[TemporalEdgeList]:
    """Split edges into ``num_windows`` disjoint, consecutive time windows."""
    if num_windows < 1:
        raise ValueError(f"num_windows must be >= 1, got {num_windows}")
    edges = graph.to_edge_list().sorted_by_time()
    if len(edges) == 0:
        return [edges] * num_windows
    lo = float(edges.timestamps.min())
    hi = float(edges.timestamps.max())
    bounds = np.linspace(lo, hi, num_windows + 1)
    windows = []
    for i in range(num_windows):
        upper = bounds[i + 1]
        mask = (edges.timestamps >= bounds[i]) & (
            edges.timestamps <= upper if i == num_windows - 1
            else edges.timestamps < upper
        )
        windows.append(edges.take(np.flatnonzero(mask)))
    return windows
