"""Temporal-dynamics statistics.

Characterizes the *timestamp* structure of a temporal graph, the
counterpart of the degree statistics in :mod:`repro.graph.stats`:
inter-event time distributions, the Goh-Barabási burstiness
coefficient, and per-node activity spans.  These are the quantities the
dataset-shaped generators must reproduce for walk-termination behaviour
(Fig. 4) to transfer from the real Table II datasets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import TemporalGraph
from repro.graph.edges import TemporalEdgeList


def inter_event_times(edges: TemporalEdgeList) -> np.ndarray:
    """Gaps between consecutive events in the global edge stream."""
    if len(edges) < 2:
        return np.empty(0, dtype=np.float64)
    ts = np.sort(edges.timestamps)
    return np.diff(ts)


def burstiness(gaps: np.ndarray) -> float:
    """Goh-Barabási burstiness ``B = (sigma - mu) / (sigma + mu)``.

    -1 for perfectly periodic streams, 0 for Poisson, towards +1 for
    bursty (heavy-tailed gap) streams.  Returns 0 for degenerate input.
    """
    gaps = np.asarray(gaps, dtype=np.float64)
    if len(gaps) == 0:
        return 0.0
    mu = gaps.mean()
    sigma = gaps.std()
    denom = sigma + mu
    if denom == 0:
        return 0.0
    return float((sigma - mu) / denom)


def node_inter_event_burstiness(
    graph: TemporalGraph, min_events: int = 4
) -> np.ndarray:
    """Per-node burstiness of *out-edge* times (nodes with >= min_events).

    Real interaction networks are bursty per user (conversations,
    sessions); Poisson-timestamped synthetics are not — the discriminator
    the generator tests use.
    """
    values: list[float] = []
    for node in range(graph.num_nodes):
        _, ts = graph.neighbors(node)
        if len(ts) >= min_events:
            values.append(burstiness(np.diff(ts)))
    return np.asarray(values, dtype=np.float64)


@dataclass(frozen=True)
class TemporalStats:
    """Summary of a graph's temporal dynamics."""

    time_span: float
    median_gap: float
    stream_burstiness: float
    mean_node_burstiness: float
    activity_concentration: float

    def as_row(self) -> dict[str, float]:
        """Dict form for table rendering."""
        return {
            "span": round(self.time_span, 4),
            "median_gap": self.median_gap,
            "burstiness": round(self.stream_burstiness, 3),
            "node_burstiness": round(self.mean_node_burstiness, 3),
            "late_activity": round(self.activity_concentration, 3),
        }


def compute_temporal_stats(graph: TemporalGraph) -> TemporalStats:
    """Compute :class:`TemporalStats` for a graph."""
    edges = graph.to_edge_list()
    gaps = inter_event_times(edges)
    node_b = node_inter_event_burstiness(graph)
    # Fraction of edges in the last half of the time span (growth).
    if len(edges):
        lo, hi = edges.timestamps.min(), edges.timestamps.max()
        midpoint = lo + 0.5 * (hi - lo)
        late = float(np.mean(edges.timestamps > midpoint))
    else:
        late = 0.0
    return TemporalStats(
        time_span=graph.time_span(),
        median_gap=float(np.median(gaps)) if len(gaps) else 0.0,
        stream_burstiness=burstiness(gaps),
        mean_node_burstiness=float(node_b.mean()) if len(node_b) else 0.0,
        activity_concentration=late,
    )
