"""Temporal edge containers.

A temporal graph is a stream of timestamped directed edges ``(u, v, t)``
(Definition III.1).  :class:`TemporalEdgeList` stores the stream in columnar
numpy arrays, which is both compact and the natural input format for CSR
construction, temporal splitting (Fig. 7 step 1), and dataset generators.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from repro.errors import GraphError


@dataclass(frozen=True)
class TemporalEdge:
    """A single timestamped directed edge ``(src, dst, timestamp)``."""

    src: int
    dst: int
    timestamp: float

    def reversed(self) -> "TemporalEdge":
        """Return the edge with endpoints swapped (same timestamp)."""
        return TemporalEdge(self.dst, self.src, self.timestamp)


class TemporalEdgeList:
    """Columnar container of timestamped edges.

    Multi-edges (repeated ``(u, v)`` pairs at distinct times) are
    preserved — the paper explicitly keeps them to retain temporally
    distant interactions between the same node pair (§V-A).

    Parameters
    ----------
    src, dst:
        Integer node-id arrays of equal length.
    timestamps:
        Float array of equal length.  Not required to be sorted.
    num_nodes:
        Optional explicit node count; defaults to ``max(id) + 1``.
    """

    def __init__(
        self,
        src: np.ndarray | Iterable[int],
        dst: np.ndarray | Iterable[int],
        timestamps: np.ndarray | Iterable[float],
        num_nodes: int | None = None,
    ) -> None:
        self.src = np.ascontiguousarray(src, dtype=np.int64)
        self.dst = np.ascontiguousarray(dst, dtype=np.int64)
        self.timestamps = np.ascontiguousarray(timestamps, dtype=np.float64)
        if not (len(self.src) == len(self.dst) == len(self.timestamps)):
            raise GraphError(
                "src, dst and timestamps must have equal length; got "
                f"{len(self.src)}, {len(self.dst)}, {len(self.timestamps)}"
            )
        if len(self.src) and (self.src.min() < 0 or self.dst.min() < 0):
            raise GraphError("node ids must be non-negative")
        observed = 0
        if len(self.src):
            observed = int(max(self.src.max(), self.dst.max())) + 1
        if num_nodes is None:
            num_nodes = observed
        elif num_nodes < observed:
            raise GraphError(
                f"num_nodes={num_nodes} is smaller than max node id + 1 ({observed})"
            )
        self.num_nodes = int(num_nodes)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        edges: Iterable[TemporalEdge | tuple[int, int, float]],
        num_nodes: int | None = None,
    ) -> "TemporalEdgeList":
        """Build from an iterable of :class:`TemporalEdge` or 3-tuples."""
        rows = [
            (e.src, e.dst, e.timestamp) if isinstance(e, TemporalEdge) else e
            for e in edges
        ]
        if not rows:
            return cls([], [], [], num_nodes=num_nodes or 0)
        src, dst, ts = zip(*rows)
        return cls(src, dst, ts, num_nodes=num_nodes)

    @classmethod
    def concatenate(cls, parts: Iterable["TemporalEdgeList"]) -> "TemporalEdgeList":
        """Concatenate several edge lists into one."""
        parts = list(parts)
        if not parts:
            return cls([], [], [], num_nodes=0)
        return cls(
            np.concatenate([p.src for p in parts]),
            np.concatenate([p.dst for p in parts]),
            np.concatenate([p.timestamps for p in parts]),
            num_nodes=max(p.num_nodes for p in parts),
        )

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.src)

    def __iter__(self) -> Iterator[TemporalEdge]:
        for u, v, t in zip(self.src, self.dst, self.timestamps):
            yield TemporalEdge(int(u), int(v), float(t))

    def __getitem__(self, index: int) -> TemporalEdge:
        return TemporalEdge(
            int(self.src[index]), int(self.dst[index]), float(self.timestamps[index])
        )

    def __repr__(self) -> str:
        return (
            f"TemporalEdgeList(num_nodes={self.num_nodes}, "
            f"num_edges={len(self)})"
        )

    # ------------------------------------------------------------------
    # Transformations (each returns a new list; originals are immutable
    # by convention)
    # ------------------------------------------------------------------
    def sorted_by_time(self, stable: bool = True) -> "TemporalEdgeList":
        """Return a copy sorted by ascending timestamp (Fig. 7 step 1)."""
        kind = "stable" if stable else "quicksort"
        order = np.argsort(self.timestamps, kind=kind)
        return self.take(order)

    def take(self, indices: np.ndarray) -> "TemporalEdgeList":
        """Return the edges at ``indices`` (in that order)."""
        return TemporalEdgeList(
            self.src[indices],
            self.dst[indices],
            self.timestamps[indices],
            num_nodes=self.num_nodes,
        )

    def with_normalized_timestamps(self) -> "TemporalEdgeList":
        """Return a copy with timestamps rescaled into [0, 1].

        The artifact appendix (A.5) prepares every dataset this way; a
        constant timestamp column maps to all-zeros.
        """
        if len(self) == 0:
            return self
        lo = self.timestamps.min()
        hi = self.timestamps.max()
        span = hi - lo
        if span == 0:
            norm = np.zeros_like(self.timestamps)
        else:
            norm = (self.timestamps - lo) / span
        return TemporalEdgeList(self.src, self.dst, norm, num_nodes=self.num_nodes)

    def with_reverse_edges(self) -> "TemporalEdgeList":
        """Return a copy with each edge duplicated in the reverse direction.

        Used to treat an interaction network as undirected while keeping
        the CSR directed representation.
        """
        return TemporalEdgeList(
            np.concatenate([self.src, self.dst]),
            np.concatenate([self.dst, self.src]),
            np.concatenate([self.timestamps, self.timestamps]),
            num_nodes=self.num_nodes,
        )

    def filter_time_range(self, t_min: float, t_max: float) -> "TemporalEdgeList":
        """Return edges with ``t_min <= t <= t_max``."""
        mask = (self.timestamps >= t_min) & (self.timestamps <= t_max)
        return self.take(np.flatnonzero(mask))

    def split_at_fraction(
        self, fraction: float
    ) -> tuple["TemporalEdgeList", "TemporalEdgeList"]:
        """Split the *time-sorted* stream into an early and late part.

        ``fraction`` is the share of edges in the early part.  This is the
        primitive behind holding out the last 20% of edges for testing
        (Fig. 7 step 1).
        """
        if not 0.0 <= fraction <= 1.0:
            raise GraphError(f"fraction must be in [0, 1], got {fraction}")
        ordered = self.sorted_by_time()
        cut = int(round(fraction * len(ordered)))
        early = ordered.take(np.arange(cut))
        late = ordered.take(np.arange(cut, len(ordered)))
        return early, late

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def edge_key_set(self) -> set[tuple[int, int]]:
        """Return the set of distinct ``(src, dst)`` pairs.

        Negative sampling (Fig. 7 step 3) uses this to guarantee sampled
        negatives are absent from the input graph.
        """
        return set(zip(self.src.tolist(), self.dst.tolist()))

    def time_span(self) -> float:
        """Return ``max(t) - min(t)``; 0 for empty lists.

        This is the normalization term ``r`` in Eq. 1.
        """
        if len(self) == 0:
            return 0.0
        return float(self.timestamps.max() - self.timestamps.min())

    def is_time_sorted(self) -> bool:
        """True when timestamps are non-decreasing."""
        return bool(np.all(np.diff(self.timestamps) >= 0)) if len(self) > 1 else True
