"""Temporal graph substrate.

This package provides the data structures the paper's pipeline runs on:

- :class:`TemporalEdgeList` — a columnar (src, dst, timestamp) edge
  container with sorting and timestamp normalization.
- :class:`TemporalGraph` — the CSR structure used by the random-walk
  kernel (the paper extends GAPBS ``WGraph``, repurposing the weight field
  for timestamps and preserving multi-edges; see §V-A).
- :mod:`repro.graph.generators` — synthetic generators, including
  dataset-shaped stand-ins for every real dataset in Table II.
- :mod:`repro.graph.io` — the ``.wel`` edge-list format from the artifact
  appendix and a labeled-dataset bundle format for node classification.
"""

from repro.graph.edges import TemporalEdge, TemporalEdgeList
from repro.graph.csr import TemporalGraph
from repro.graph.dynamic import DynamicTemporalGraph
from repro.graph.snapshots import snapshot_at
from repro.graph.stats import GraphStats, compute_stats
from repro.graph import generators, io

__all__ = [
    "TemporalEdge",
    "TemporalEdgeList",
    "TemporalGraph",
    "DynamicTemporalGraph",
    "snapshot_at",
    "GraphStats",
    "compute_stats",
    "generators",
    "io",
]
