"""Synthetic temporal graph generators.

The paper evaluates on six real datasets (Table II) plus synthetic
Erdős–Rényi graphs with synthetic timestamps for the hardware study
(§VI-C).  Real downloads are unavailable offline, so this module provides:

1. **Primitive generators** — Erdős–Rényi temporal (exactly what the
   paper's ``generate_synthetic.py`` produces with networkx), an
   activity-driven heavy-tailed interaction generator, and a temporal
   stochastic block model for labeled graphs.
2. **Dataset-shaped factories** — one per Table II row, each configured to
   match the real dataset's node/edge ratio, degree skew and label
   structure at a laptop ``scale``.

All generators take an explicit ``seed`` and are deterministic given it.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.graph.edges import TemporalEdgeList
from repro.graph.io import LabeledTemporalDataset
from repro.rng import SeedLike, make_rng

# ---------------------------------------------------------------------------
# Primitive generators
# ---------------------------------------------------------------------------


def _timestamps(rng: np.random.Generator, count: int, growth: float) -> np.ndarray:
    """Sample ``count`` timestamps in [0, 1].

    ``growth == 1`` gives a uniform edge rate; ``growth > 1`` concentrates
    edges late in the time span (real networks accumulate activity), via
    the inverse-CDF transform ``u ** (1 / growth)``.
    """
    u = rng.random(count)
    if growth != 1.0:
        u = u ** (1.0 / growth)
    return u


def erdos_renyi_temporal(
    num_nodes: int,
    num_edges: int,
    seed: SeedLike = None,
    growth: float = 1.0,
    allow_self_loops: bool = False,
) -> TemporalEdgeList:
    """Erdős–Rényi temporal graph: uniform random endpoints and timestamps.

    This matches the paper's synthetic hardware-study inputs ("Erdős–Rényi
    random graphs, with varying sizes and degrees, with synthetic
    timestamps", §VI-C) and the artifact's ``generate_synthetic.py``.
    """
    if num_nodes < 1:
        raise GraphError(f"num_nodes must be >= 1, got {num_nodes}")
    rng = make_rng(seed)
    src = rng.integers(0, num_nodes, size=num_edges)
    dst = rng.integers(0, num_nodes, size=num_edges)
    if not allow_self_loops and num_nodes > 1:
        loops = src == dst
        while loops.any():
            dst[loops] = rng.integers(0, num_nodes, size=int(loops.sum()))
            loops = src == dst
    ts = _timestamps(rng, num_edges, growth)
    return TemporalEdgeList(src, dst, ts, num_nodes=num_nodes)


def activity_driven_temporal(
    num_nodes: int,
    num_edges: int,
    seed: SeedLike = None,
    activity_exponent: float = 2.2,
    popularity_exponent: float = 2.2,
    growth: float = 1.4,
    burstiness: float = 0.0,
    compact: bool = True,
) -> TemporalEdgeList:
    """Heavy-tailed interaction network (email / wiki / stackoverflow shape).

    Each node draws an *activity* weight (how often it initiates edges) and
    a *popularity* weight (how often it receives them) from discrete
    Pareto-like distributions.  Edges are emitted in **sessions**: an
    active node starts a session at a growth-distributed time and emits a
    geometric burst of edges at tightly spaced timestamps (conversation
    turns; each follow-up edge repeats the previous destination with
    probability 1/2).  This produces the power-law out/in-degree
    distributions and multi-edges that drive the paper's walk-length
    power law (Fig. 4) *and* the positive per-node inter-event
    burstiness real interaction networks show.

    ``burstiness`` in [0, 1) is the probability a session continues after
    each edge (mean session length ``1 / (1 - burstiness)``); 0 gives a
    Poisson-like stream.

    With ``compact`` (the default), node ids are relabeled to the nodes
    that actually appear in some edge, matching how real edge-list
    datasets define their node set (every Table II node touches at least
    one edge); the returned graph may therefore have fewer than
    ``num_nodes`` nodes.
    """
    if num_nodes < 2:
        raise GraphError(f"num_nodes must be >= 2, got {num_nodes}")
    if not 0.0 <= burstiness < 1.0:
        raise GraphError(f"burstiness must be in [0, 1), got {burstiness}")
    rng = make_rng(seed)
    activity = rng.pareto(activity_exponent - 1.0, size=num_nodes) + 1.0
    popularity = rng.pareto(popularity_exponent - 1.0, size=num_nodes) + 1.0
    p_src = activity / activity.sum()
    p_dst = popularity / popularity.sum()

    # Sessions: enough geometric bursts to cover num_edges.
    continue_prob = burstiness
    mean_length = 1.0 / (1.0 - continue_prob)
    n_sessions = max(1, int(num_edges / mean_length * 1.2) + 8)
    lengths = rng.geometric(1.0 - continue_prob, size=n_sessions)
    while lengths.sum() < num_edges:
        lengths = np.concatenate(
            [lengths, rng.geometric(1.0 - continue_prob, size=n_sessions)]
        )
    # Trim to exactly num_edges.
    cum = np.cumsum(lengths)
    last = int(np.searchsorted(cum, num_edges))
    lengths = lengths[: last + 1].copy()
    lengths[-1] -= int(cum[last] - num_edges)
    lengths = lengths[lengths > 0]

    session_src = rng.choice(num_nodes, size=len(lengths), p=p_src)
    session_start = _timestamps(rng, len(lengths), growth)
    src = np.repeat(session_src, lengths)
    # Within-session timestamps: tiny exponential increments after the
    # session start (conversation turns are near-instant on the global
    # time scale).
    within_gap = rng.exponential(2e-5, size=int(lengths.sum()))
    offsets = np.cumsum(within_gap)
    starts = np.cumsum(lengths) - lengths
    offsets = offsets - np.repeat(offsets[starts], lengths) + np.repeat(
        within_gap[starts], lengths
    )
    ts = np.minimum(np.repeat(session_start, lengths) + offsets, 1.0)

    dst = rng.choice(num_nodes, size=len(src), p=p_dst)
    # Conversation continuity: follow-up edges repeat the previous
    # destination half the time.
    not_first = np.ones(len(src), dtype=bool)
    not_first[starts] = False
    repeat_prev = not_first & (rng.random(len(src)) < 0.5)
    idx = np.flatnonzero(repeat_prev)
    dst[idx] = dst[idx - 1]
    # Re-draw self loops from the destination distribution.
    loops = src == dst
    while loops.any():
        dst[loops] = rng.choice(num_nodes, size=int(loops.sum()), p=p_dst)
        loops = src == dst
    if compact:
        appearing, inverse = np.unique(
            np.concatenate([src, dst]), return_inverse=True
        )
        src = inverse[: len(src)]
        dst = inverse[len(src):]
        num_nodes = len(appearing)
    return TemporalEdgeList(src, dst, ts, num_nodes=num_nodes)


def temporal_sbm(
    nodes_per_block: list[int],
    intra_degree: float,
    inter_degree: float,
    seed: SeedLike = None,
    growth: float = 1.0,
) -> LabeledTemporalDataset:
    """Temporal stochastic block model with block labels.

    Nodes in block ``b`` get label ``b``.  Expected intra-block out-degree
    is ``intra_degree`` and expected out-degree toward all other blocks is
    ``inter_degree``.  This is the labeled substrate behind the dblp- and
    brain-shaped datasets: community structure is what node classification
    must recover from temporal walks.
    """
    if not nodes_per_block:
        raise GraphError("nodes_per_block must be non-empty")
    rng = make_rng(seed)
    labels = np.repeat(np.arange(len(nodes_per_block)), nodes_per_block)
    num_nodes = int(labels.size)
    block_start = np.cumsum([0] + list(nodes_per_block))
    src_parts: list[np.ndarray] = []
    dst_parts: list[np.ndarray] = []
    for b, size in enumerate(nodes_per_block):
        lo, hi = block_start[b], block_start[b + 1]
        n_intra = rng.poisson(intra_degree * size)
        n_inter = rng.poisson(inter_degree * size)
        src_parts.append(rng.integers(lo, hi, size=n_intra + n_inter))
        dst_intra = rng.integers(lo, hi, size=n_intra)
        # Inter-block destinations: sample globally, resample hits in-block.
        dst_inter = rng.integers(0, num_nodes, size=n_inter)
        if num_nodes > size:
            inside = (dst_inter >= lo) & (dst_inter < hi)
            while inside.any():
                dst_inter[inside] = rng.integers(0, num_nodes, size=int(inside.sum()))
                inside = (dst_inter >= lo) & (dst_inter < hi)
        dst_parts.append(np.concatenate([dst_intra, dst_inter]))
    src = np.concatenate(src_parts)
    dst = np.concatenate(dst_parts)
    loops = src == dst
    if num_nodes > 1:
        while loops.any():
            dst[loops] = (src[loops] + 1 + rng.integers(
                0, num_nodes - 1, size=int(loops.sum()))) % num_nodes
            loops = src == dst
    ts = _timestamps(rng, len(src), growth)
    edges = TemporalEdgeList(src, dst, ts, num_nodes=num_nodes)
    return LabeledTemporalDataset(
        name="temporal-sbm", edges=edges, labels=labels,
        metadata={"blocks": list(nodes_per_block)},
    )


# ---------------------------------------------------------------------------
# Dataset-shaped factories (Table II stand-ins)
# ---------------------------------------------------------------------------
# Real sizes from Table II, reproduced here so the scaled shapes and the
# Table II bench can reference them.
TABLE2_REAL_SIZES: dict[str, tuple[int, int]] = {
    "ia-email": (87_274, 1_148_072),
    "wiki-talk": (1_140_149, 7_833_140),
    "stackoverflow": (6_024_271, 63_497_050),
    "dblp5": (6_606, 42_815),
    "dblp3": (4_257, 23_540),
    "brain": (5_000, 1_955_488),
}


def _scaled(name: str, scale: float) -> tuple[int, int]:
    nodes, edges = TABLE2_REAL_SIZES[name]
    return max(2, int(round(nodes * scale))), max(1, int(round(edges * scale)))


def ia_email_like(scale: float = 0.02, seed: SeedLike = None) -> TemporalEdgeList:
    """Enron-email-shaped graph: heavy-tailed senders, bursty threads.

    Real dataset: 87,274 nodes / 1,148,072 temporal edges (mean degree
    ~13).  Default scale 0.02 → ~1.7k nodes / ~23k edges.
    """
    nodes, edges = _scaled("ia-email", scale)
    return activity_driven_temporal(
        nodes, edges, seed=seed,
        activity_exponent=1.9, popularity_exponent=2.1,
        growth=1.5, burstiness=0.5,
    )


def wiki_talk_like(scale: float = 0.005, seed: SeedLike = None) -> TemporalEdgeList:
    """Wikipedia-talk-shaped graph: extreme degree skew, sparse overall.

    Real dataset: 1,140,149 nodes / 7,833,140 edges (mean degree ~6.9,
    hub-dominated).  Default scale 0.005 → ~5.7k nodes / ~39k edges.
    """
    nodes, edges = _scaled("wiki-talk", scale)
    return activity_driven_temporal(
        nodes, edges, seed=seed,
        activity_exponent=1.7, popularity_exponent=1.8,
        growth=1.8, burstiness=0.35,
    )


def stackoverflow_like(scale: float = 0.001, seed: SeedLike = None) -> TemporalEdgeList:
    """StackOverflow-shaped interaction graph (largest LP dataset).

    Real dataset: 6,024,271 nodes / 63,497,050 edges (mean degree ~10.5).
    Default scale 0.001 → ~6k nodes / ~63k edges.
    """
    nodes, edges = _scaled("stackoverflow", scale)
    return activity_driven_temporal(
        nodes, edges, seed=seed,
        activity_exponent=1.8, popularity_exponent=1.9,
        growth=2.0, burstiness=0.4,
    )


def dblp5_like(scale: float = 0.25, seed: SeedLike = None) -> LabeledTemporalDataset:
    """DBLP-shaped co-author graph with 5 research-area labels.

    Real dataset: 6,606 nodes / 42,815 edges / 5 classes.  Default scale
    0.25 → ~1.65k nodes / ~10.7k edges.
    """
    return _dblp_like("dblp5", num_classes=5, scale=scale, seed=seed)


def dblp3_like(scale: float = 0.25, seed: SeedLike = None) -> LabeledTemporalDataset:
    """DBLP-shaped co-author graph with 3 research-area labels.

    Real dataset: 4,257 nodes / 23,540 edges / 3 classes.  Default scale
    0.25 → ~1.1k nodes / ~5.9k edges.
    """
    return _dblp_like("dblp3", num_classes=3, scale=scale, seed=seed)


def _dblp_like(
    name: str, num_classes: int, scale: float, seed: SeedLike
) -> LabeledTemporalDataset:
    nodes, edges = _scaled(name, scale)
    rng = make_rng(seed)
    # Research areas are unevenly sized; tilt block sizes mildly.
    weights = rng.dirichlet(np.full(num_classes, 8.0))
    sizes = np.maximum(2, np.round(weights * nodes).astype(int))
    total = int(sizes.sum())
    mean_degree = edges / total
    # Co-authorship is strongly assortative: ~85% of a node's edges stay in
    # its research area.
    dataset = temporal_sbm(
        sizes.tolist(),
        intra_degree=0.85 * mean_degree,
        inter_degree=0.15 * mean_degree,
        seed=rng,
        growth=1.3,
    )
    dataset.name = name
    dataset.metadata["classes"] = num_classes
    return dataset


def brain_like(scale: float = 0.2, seed: SeedLike = None) -> LabeledTemporalDataset:
    """Brain-tissue-connectivity-shaped graph: dense, 10 region labels.

    Real dataset: 5,000 nodes / 1,955,488 edges (mean degree ~391) with
    region-of-interest labels.  Default scale 0.2 → 1k nodes / ~391k
    edges; density is the defining feature, so edges scale with ``scale``
    but stay dense relative to nodes.
    """
    nodes, edges = _scaled("brain", scale)
    # Keep density comparable to the real graph: edges scale ~ scale^2
    # relative to a same-density graph, so recompute from mean degree.
    real_mean_degree = TABLE2_REAL_SIZES["brain"][1] / TABLE2_REAL_SIZES["brain"][0]
    edges = int(nodes * real_mean_degree * 0.5)  # half density keeps it tractable
    rng = make_rng(seed)
    num_regions = 10
    sizes = np.full(num_regions, nodes // num_regions)
    sizes[: nodes % num_regions] += 1
    mean_degree = edges / nodes
    dataset = temporal_sbm(
        sizes.tolist(),
        intra_degree=0.7 * mean_degree,
        inter_degree=0.3 * mean_degree,
        seed=rng,
        growth=1.0,
    )
    dataset.name = "brain"
    dataset.metadata["classes"] = num_regions
    return dataset


def drifting_temporal_sbm(
    num_nodes: int = 400,
    num_classes: int = 4,
    mean_degree: float = 12.0,
    relabel_fraction: float = 0.5,
    assortativity: float = 0.85,
    seed: SeedLike = None,
) -> LabeledTemporalDataset:
    """Community structure that *drifts* over time (labels = final state).

    The first half of the time span wires nodes by their *initial*
    community; then ``relabel_fraction`` of nodes move to a different
    community and the second half wires by the *final* assignment, which
    is also the ground-truth label.  This is the scenario where modeling
    the graph as static provably loses information (§I): static walks
    blend stale first-epoch edges into every neighborhood, while
    temporally valid walks biased toward later timestamps track the
    current structure.  Used by the temporal-vs-static ablation.
    """
    if num_classes < 2:
        raise GraphError(f"num_classes must be >= 2, got {num_classes}")
    if not 0.0 <= relabel_fraction <= 1.0:
        raise GraphError("relabel_fraction must be in [0, 1]")
    rng = make_rng(seed)
    old = rng.integers(0, num_classes, num_nodes)
    new = old.copy()
    movers = rng.random(num_nodes) < relabel_fraction
    shift = 1 + rng.integers(0, num_classes - 1, int(movers.sum()))
    new[movers] = (old[movers] + shift) % num_classes

    half = int(num_nodes * mean_degree) // 2

    def epoch_edges(labels: np.ndarray, t_lo: float, t_hi: float
                    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        src = rng.integers(0, num_nodes, half)
        dst = np.empty(half, dtype=np.int64)
        same = rng.random(half) < assortativity
        members = [np.flatnonzero(labels == c) for c in range(num_classes)]
        outsiders = [np.flatnonzero(labels != c) for c in range(num_classes)]
        for c in range(num_classes):
            idx_same = np.flatnonzero(same & (labels[src] == c))
            if len(idx_same):
                dst[idx_same] = rng.choice(members[c], size=len(idx_same))
            idx_diff = np.flatnonzero(~same & (labels[src] == c))
            if len(idx_diff):
                dst[idx_diff] = rng.choice(outsiders[c], size=len(idx_diff))
        loops = src == dst
        while loops.any():
            dst[loops] = rng.integers(0, num_nodes, int(loops.sum()))
            loops = src == dst
        return src, dst, rng.uniform(t_lo, t_hi, half)

    s1, d1, t1 = epoch_edges(old, 0.0, 0.5)
    s2, d2, t2 = epoch_edges(new, 0.5, 1.0)
    edges = TemporalEdgeList(
        np.concatenate([s1, s2]),
        np.concatenate([d1, d2]),
        np.concatenate([t1, t2]),
        num_nodes=num_nodes,
    )
    return LabeledTemporalDataset(
        name="drifting-sbm", edges=edges, labels=new,
        metadata={"relabel_fraction": relabel_fraction,
                  "classes": num_classes},
    )


def dataset_by_name(name: str, scale: float | None = None, seed: SeedLike = None):
    """Look up a Table II dataset-shaped generator by name.

    Returns a :class:`TemporalEdgeList` for link-prediction datasets and a
    :class:`LabeledTemporalDataset` for node-classification datasets.
    """
    factories = {
        "ia-email": ia_email_like,
        "wiki-talk": wiki_talk_like,
        "stackoverflow": stackoverflow_like,
        "dblp5": dblp5_like,
        "dblp3": dblp3_like,
        "brain": brain_like,
    }
    if name not in factories:
        raise GraphError(
            f"unknown dataset {name!r}; options: {sorted(factories)}"
        )
    factory = factories[name]
    if scale is None:
        return factory(seed=seed)
    return factory(scale=scale, seed=seed)
