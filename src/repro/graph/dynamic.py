"""Append-only dynamic temporal graph.

§VII-B motivates the end-to-end time study with deployment reality: "the
graph evolves over time.  With this evolution, an entire pipeline needs
to run to account for new nodes/connections."  This module provides the
evolving-graph substrate for that scenario:

- :class:`DynamicTemporalGraph` buffers appended temporal edges and
  rebuilds its CSR snapshot lazily (amortized over batches of
  insertions, the way a deployment would re-index between pipeline
  runs);
- :meth:`DynamicTemporalGraph.affected_nodes` reports which nodes'
  temporal neighborhoods changed since a marker, so callers can re-walk
  only those instead of the whole graph (the incremental alternative to
  re-running everything, used by the incremental-update example and
  bench).

The structure is thread-safe for the online-serving and streaming
topologies (:mod:`repro.serving`, :mod:`repro.stream`): one ingest
thread appending batches while serving threads read ``graph()`` /
``edge_list()`` / ``generation``.  All mutating, snapshot-building,
*and reading* operations serialize on an internal lock (so a reader
can never observe an edge list and a node count from different
generations), and :meth:`subscribe` registers generation-bump callbacks
(fired after the lock is released, so a callback may re-enter the graph
freely).  A raising callback is isolated — logged, counted under
``dynamic.subscriber_errors``, and the remaining subscribers still run
— so one bad observer can never kill the ingest thread.

Generation markers are retained for the ``marker_retention`` most
recent generations (long-running streams would otherwise grow one dict
entry per append forever); consumers release markers they have applied
via :meth:`release_marker`.
"""

from __future__ import annotations

import logging
import threading
from typing import Callable

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import TemporalGraph
from repro.graph.edges import TemporalEdgeList
from repro.observability import get_recorder

log = logging.getLogger(__name__)

#: Default number of recent generation markers retained for
#: :meth:`DynamicTemporalGraph.edges_since`.  Far more than any embedder
#: lags behind, small enough that week-long ingest cannot leak.
DEFAULT_MARKER_RETENTION = 1024


class DynamicTemporalGraph:
    """A temporal graph that grows by edge batches."""

    def __init__(self, edges: TemporalEdgeList | None = None,
                 num_nodes: int | None = None,
                 marker_retention: int = DEFAULT_MARKER_RETENTION) -> None:
        if edges is None:
            edges = TemporalEdgeList([], [], [], num_nodes=num_nodes or 0)
        elif num_nodes is not None and num_nodes > edges.num_nodes:
            edges = TemporalEdgeList(
                edges.src, edges.dst, edges.timestamps, num_nodes=num_nodes
            )
        if marker_retention < 1:
            raise GraphError(
                f"marker_retention must be >= 1, got {marker_retention}"
            )
        self._edges = edges
        self._snapshot: TemporalGraph | None = None
        self._generation = 0
        self._lock = threading.RLock()
        self._subscribers: list[Callable[[int], None]] = []
        self._marker_retention = int(marker_retention)
        # Edge count at each retained generation marker, for
        # affected_nodes(); insertion-ordered, oldest first.
        self._marker_edge_counts: dict[int, int] = {0: len(edges)}

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes (vocabulary size)."""
        with self._lock:
            return self._edges.num_nodes

    @property
    def num_edges(self) -> int:
        """Number of temporal edges."""
        with self._lock:
            return len(self._edges)

    @property
    def generation(self) -> int:
        """Monotone counter, bumped by every :meth:`append`."""
        with self._lock:
            return self._generation

    # ------------------------------------------------------------------
    def subscribe(self, callback: Callable[[int], None]) -> None:
        """Register ``callback(new_generation)`` to run after appends.

        Callbacks fire outside the internal lock in registration order;
        the serving layer uses this to kick incremental refreshes.  An
        exception from one callback is logged and counted
        (``dynamic.subscriber_errors``) but neither skips the remaining
        callbacks nor propagates into the appending thread.
        """
        with self._lock:
            self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[int], None]) -> bool:
        """Deregister ``callback``; returns False when it wasn't registered.

        Idempotent, so shutdown paths (e.g. the stream controller's)
        may call it unconditionally.
        """
        with self._lock:
            try:
                self._subscribers.remove(callback)
                return True
            except ValueError:
                return False

    def append(self, new_edges: TemporalEdgeList) -> int:
        """Append a batch of edges; returns the new generation marker.

        Appended edges may introduce new node ids (the node set grows).
        Timestamps need not be later than existing ones — the rebuilt
        CSR re-sorts every adjacency — though deployments typically
        append in time order.
        """
        if len(new_edges) == 0:
            return self.generation
        with self._lock:
            self._edges = TemporalEdgeList.concatenate(
                [self._edges, new_edges]
            )
            self._snapshot = None
            self._generation += 1
            generation = self._generation
            self._marker_edge_counts[generation] = len(self._edges)
            while len(self._marker_edge_counts) > self._marker_retention:
                oldest = next(iter(self._marker_edge_counts))
                del self._marker_edge_counts[oldest]
            subscribers = list(self._subscribers)
        for callback in subscribers:
            try:
                callback(generation)
            except Exception:
                get_recorder().counter("dynamic.subscriber_errors")
                log.warning(
                    "generation subscriber %r raised on generation %d",
                    callback, generation, exc_info=True,
                )
        return generation

    def graph(self) -> TemporalGraph:
        """Current CSR snapshot (rebuilt lazily after appends)."""
        with self._lock:
            if self._snapshot is None or (
                self._snapshot.num_nodes != self._edges.num_nodes
            ):
                self._snapshot = TemporalGraph.from_edge_list(self._edges)
            return self._snapshot

    def edge_list(self) -> TemporalEdgeList:
        """The full edge stream accumulated so far."""
        with self._lock:
            return self._edges

    # ------------------------------------------------------------------
    def edges_since(self, marker: int) -> TemporalEdgeList:
        """Edges appended after generation ``marker``."""
        with self._lock:
            if marker not in self._marker_edge_counts:
                raise GraphError(
                    f"unknown generation marker {marker} (released, or "
                    f"older than the {self._marker_retention}-marker "
                    f"retention window)"
                )
            start = self._marker_edge_counts[marker]
            edges = self._edges
        return edges.take(np.arange(start, len(edges)))

    def release_marker(self, marker: int) -> bool:
        """Drop a consumed generation marker; returns False if unknown.

        Consumers (e.g. :class:`~repro.tasks.incremental
        .IncrementalEmbedder`) release the marker they synced *from*
        once an update completes, so long-running ingest retains only
        live markers.  The current generation's marker is never
        dropped — it is the baseline the next ``edges_since`` needs.
        """
        with self._lock:
            if marker == self._generation:
                return False
            return self._marker_edge_counts.pop(marker, None) is not None

    def retained_markers(self) -> list[int]:
        """Currently retained generation markers, oldest first."""
        with self._lock:
            return list(self._marker_edge_counts)

    def affected_nodes(self, marker: int) -> np.ndarray:
        """Nodes whose temporal neighborhood changed since ``marker``.

        A new edge ``(u, v, t)`` changes the *out*-neighborhood of ``u``
        (walks from or through ``u`` can now take it) and introduces
        ``v`` if unseen.  Re-walking exactly these nodes refreshes every
        stale walk prefix of length 1; deeper staleness decays with walk
        length and is the accuracy/latency trade-off the incremental
        bench measures.
        """
        fresh = self.edges_since(marker)
        return np.unique(np.concatenate([fresh.src, fresh.dst]))
