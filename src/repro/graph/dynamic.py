"""Append-only dynamic temporal graph.

§VII-B motivates the end-to-end time study with deployment reality: "the
graph evolves over time.  With this evolution, an entire pipeline needs
to run to account for new nodes/connections."  This module provides the
evolving-graph substrate for that scenario:

- :class:`DynamicTemporalGraph` buffers appended temporal edges and
  rebuilds its CSR snapshot lazily (amortized over batches of
  insertions, the way a deployment would re-index between pipeline
  runs);
- :meth:`DynamicTemporalGraph.affected_nodes` reports which nodes'
  temporal neighborhoods changed since a marker, so callers can re-walk
  only those instead of the whole graph (the incremental alternative to
  re-running everything, used by the incremental-update example and
  bench).

The structure is thread-safe for the online-serving topology
(:mod:`repro.serving`): one ingest thread appending batches while
serving threads read ``graph()`` / ``generation``.  All mutating and
snapshot-building operations serialize on an internal lock, and
:meth:`subscribe` registers generation-bump callbacks (fired after the
lock is released, so a callback may re-enter the graph freely).
"""

from __future__ import annotations

import threading
from typing import Callable

import numpy as np

from repro.errors import GraphError
from repro.graph.csr import TemporalGraph
from repro.graph.edges import TemporalEdgeList


class DynamicTemporalGraph:
    """A temporal graph that grows by edge batches."""

    def __init__(self, edges: TemporalEdgeList | None = None,
                 num_nodes: int | None = None) -> None:
        if edges is None:
            edges = TemporalEdgeList([], [], [], num_nodes=num_nodes or 0)
        elif num_nodes is not None and num_nodes > edges.num_nodes:
            edges = TemporalEdgeList(
                edges.src, edges.dst, edges.timestamps, num_nodes=num_nodes
            )
        self._edges = edges
        self._snapshot: TemporalGraph | None = None
        self._generation = 0
        self._lock = threading.RLock()
        self._subscribers: list[Callable[[int], None]] = []
        # Edge count at each generation marker, for affected_nodes().
        self._marker_edge_counts: dict[int, int] = {0: len(edges)}

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes (vocabulary size)."""
        return self._edges.num_nodes

    @property
    def num_edges(self) -> int:
        """Number of temporal edges."""
        return len(self._edges)

    @property
    def generation(self) -> int:
        """Monotone counter, bumped by every :meth:`append`."""
        return self._generation

    # ------------------------------------------------------------------
    def subscribe(self, callback: Callable[[int], None]) -> None:
        """Register ``callback(new_generation)`` to run after appends.

        Callbacks fire outside the internal lock in registration order;
        the serving layer uses this to kick incremental refreshes.
        """
        with self._lock:
            self._subscribers.append(callback)

    def append(self, new_edges: TemporalEdgeList) -> int:
        """Append a batch of edges; returns the new generation marker.

        Appended edges may introduce new node ids (the node set grows).
        Timestamps need not be later than existing ones — the rebuilt
        CSR re-sorts every adjacency — though deployments typically
        append in time order.
        """
        if len(new_edges) == 0:
            return self._generation
        with self._lock:
            self._edges = TemporalEdgeList.concatenate(
                [self._edges, new_edges]
            )
            self._snapshot = None
            self._generation += 1
            generation = self._generation
            self._marker_edge_counts[generation] = len(self._edges)
            subscribers = list(self._subscribers)
        for callback in subscribers:
            callback(generation)
        return generation

    def graph(self) -> TemporalGraph:
        """Current CSR snapshot (rebuilt lazily after appends)."""
        with self._lock:
            if self._snapshot is None or (
                self._snapshot.num_nodes != self._edges.num_nodes
            ):
                self._snapshot = TemporalGraph.from_edge_list(self._edges)
            return self._snapshot

    def edge_list(self) -> TemporalEdgeList:
        """The full edge stream accumulated so far."""
        return self._edges

    # ------------------------------------------------------------------
    def edges_since(self, marker: int) -> TemporalEdgeList:
        """Edges appended after generation ``marker``."""
        with self._lock:
            if marker not in self._marker_edge_counts:
                raise GraphError(f"unknown generation marker {marker}")
            start = self._marker_edge_counts[marker]
            edges = self._edges
        return edges.take(np.arange(start, len(edges)))

    def affected_nodes(self, marker: int) -> np.ndarray:
        """Nodes whose temporal neighborhood changed since ``marker``.

        A new edge ``(u, v, t)`` changes the *out*-neighborhood of ``u``
        (walks from or through ``u`` can now take it) and introduces
        ``v`` if unseen.  Re-walking exactly these nodes refreshes every
        stale walk prefix of length 1; deeper staleness decays with walk
        length and is the accuracy/latency trade-off the incremental
        bench measures.
        """
        fresh = self.edges_since(marker)
        return np.unique(np.concatenate([fresh.src, fresh.dst]))
